#ifndef FGAC_COMMON_THREAD_POOL_H_
#define FGAC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fgac::common {

/// A small fixed-size thread pool with one shared FIFO queue — deliberately
/// work-stealing-free: morsel-driven parallelism gets its load balancing
/// from the shared morsel cursor, not from the scheduler, so a plain queue
/// is sufficient and much easier to reason about under TSan.
///
/// Tasks must be independent: a task must never block on another task's
/// completion (the pool has no nested-wait support), and tasks must not
/// submit follow-up work and wait for it. Both execution-layer uses —
/// per-thread pipeline drains and C3 probe batches — satisfy this by
/// construction.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Tasks executed since construction.
  uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

  /// Deepest the FIFO queue has ever been (pending, not yet claimed
  /// tasks). A persistent high-water near the total task count means the
  /// pool is saturated and submissions are piling up.
  uint64_t queue_depth_high_water() const {
    return queue_high_water_.load(std::memory_order_relaxed);
  }

  /// Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs all tasks and returns when every one has finished. The calling
  /// thread does not execute tasks; it blocks on a completion latch, so the
  /// pool must have at least one worker (the constructor guarantees it).
  void RunAll(std::vector<std::function<void()>> tasks);

  /// Process-wide pool sized for the host (at least 4 threads so that
  /// multi-threaded execution paths are genuinely concurrent — and
  /// observable by TSan — even on small CI machines). Created on first use.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  void NoteQueueDepth(size_t depth);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> queue_high_water_{0};
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fgac::common

#endif  // FGAC_COMMON_THREAD_POOL_H_
