#ifndef FGAC_COMMON_THREAD_POOL_H_
#define FGAC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fgac::common {

/// A fixed-size work-stealing thread pool: one bounded-contention deque per
/// worker plus a global injection queue for external submitters. Workers
/// prefer their own deque (LIFO, so follow-up work stays cache-warm), then
/// the global queue, then steal from peers (FIFO, so they take the oldest —
/// coldest — work). Each deque is guarded by its own small mutex rather
/// than a lock-free structure: steals are rare enough that the mutex never
/// shows up in profiles, and TSan can verify the whole pool.
///
/// A task submitted from a pool worker lands on that worker's own deque;
/// peers pick it up by stealing. This is what lets the pipeline scheduler
/// (exec/scheduler.h) enqueue newly-runnable pipelines from completion
/// handlers without a dedicated dispatcher thread.
///
/// Tasks must never BLOCK on another task's completion (the pool has no
/// nested-wait support); submitting follow-up work and returning is fine,
/// submitting and waiting is not. The pipeline scheduler satisfies this by
/// construction: pipeline tasks only decrement dependency counters and
/// enqueue; the only blocking wait is on the query's caller thread, which
/// is never a pool worker.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Tasks executed since construction.
  uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

  /// Tasks a worker took from a peer's deque rather than its own or the
  /// global queue. A nonzero value is proof the stealing path is live; a
  /// value rivaling tasks_run() means submitters and executors are
  /// chronically different threads.
  uint64_t tasks_stolen() const {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }

  /// Deepest the pool's pending-task count has ever been (submitted, not
  /// yet claimed, across the global queue and every worker deque). A
  /// persistent high-water near the total task count means the pool is
  /// saturated and submissions are piling up.
  uint64_t queue_depth_high_water() const {
    return queue_high_water_.load(std::memory_order_relaxed);
  }

  /// Currently pending (submitted, not yet claimed) tasks. Approximate by
  /// nature — it changes under the caller's feet — but exact when quiesced.
  size_t queue_depth() const { return pending_.load(std::memory_order_relaxed); }

  /// Enqueues one task for asynchronous execution. Callable from any
  /// thread, including pool workers (whose tasks go to their own deque).
  void Submit(std::function<void()> task);

  /// Runs all tasks and returns when every one has finished. The calling
  /// thread does not execute tasks; it blocks on a completion latch, so it
  /// must not itself be a pool worker (nested wait) and the pool must have
  /// at least one worker (the constructor guarantees it).
  void RunAll(std::vector<std::function<void()>> tasks);

  /// Process-wide pool sized for the host (at least 4 threads so that
  /// multi-threaded execution paths are genuinely concurrent — and
  /// observable by TSan — even on small CI machines). Created on first
  /// use; size resolution: ConfigureShared() request, else FGAC_THREADS
  /// env var, else max(4, hardware_concurrency).
  static ThreadPool& Shared();

  /// Requests the shared pool's size before it exists. Takes effect only
  /// if called before the first Shared() — the pool is created once and
  /// never resized — and only with n > 0 (0 = keep the default
  /// resolution). Later calls are ignored.
  static void ConfigureShared(size_t n);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> dq;
  };

  void WorkerLoop(size_t self);

  /// Own deque (back) -> global queue (front) -> steal (peer front).
  bool TryGetTask(size_t self, std::function<void()>* out);

  void NotePending(size_t depth);

  std::vector<std::unique_ptr<WorkerQueue>> local_;
  /// Guards the global queue and the sleep predicate; pending_ is bumped
  /// under it so sleepers cannot miss a wakeup.
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> global_;
  bool shutdown_ = false;
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::atomic<uint64_t> queue_high_water_{0};
  std::vector<std::thread> workers_;
};

}  // namespace fgac::common

#endif  // FGAC_COMMON_THREAD_POOL_H_
