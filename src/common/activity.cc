#include "common/activity.h"

#include <algorithm>
#include <utility>

namespace fgac::common {

using activity_internal::SessionRec;

const char* StatementPhaseName(StatementPhase phase) {
  switch (phase) {
    case StatementPhase::kQueued:
      return "queued";
    case StatementPhase::kValidity:
      return "validity";
    case StatementPhase::kRewrite:
      return "rewrite";
    case StatementPhase::kExec:
      return "exec";
    case StatementPhase::kFinished:
      return "finished";
  }
  return "unknown";
}

StatementActivity::StatementActivity(uint64_t seq, std::string session_id,
                                     std::string user, std::string statement,
                                     std::shared_ptr<SessionRec> session)
    : seq_(seq),
      session_id_(std::move(session_id)),
      user_(std::move(user)),
      statement_(std::move(statement)),
      started_(std::chrono::steady_clock::now()),
      session_(std::move(session)) {}

void StatementActivity::NoteCacheHit() {
  if (session_ != nullptr) {
    session_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
}

uint64_t StatementActivity::elapsed_us() const {
  auto d = std::chrono::steady_clock::now() - started_;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

void ActivityRegistry::OpenSession(const std::string& session_id,
                                   const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<SessionRec>& rec = sessions_[session_id];
  if (rec == nullptr) {
    rec = std::make_shared<SessionRec>();
    rec->session_id = session_id;
    rec->user = user;
  }
  rec->explicit_open = true;
}

void ActivityRegistry::CloseSession(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
}

std::shared_ptr<StatementActivity> ActivityRegistry::BeginStatement(
    const std::string& session_id, const std::string& user,
    const std::string& statement) {
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string text = statement.size() > kMaxStatementBytes
                         ? statement.substr(0, kMaxStatementBytes)
                         : statement;
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<SessionRec>& rec = sessions_[session_id];
  if (rec == nullptr) {
    // Implicit session: a bare SessionContext ran a statement without a
    // server connection. Dropped again when its last statement ends.
    rec = std::make_shared<SessionRec>();
    rec->session_id = session_id;
    rec->user = user;
  }
  rec->in_flight.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<StatementActivity> activity(
      new StatementActivity(seq, session_id, user, std::move(text), rec));
  statements_[seq] = activity;
  return activity;
}

void ActivityRegistry::EndStatement(
    const std::shared_ptr<StatementActivity>& activity) {
  if (activity == nullptr) return;
  activity->set_phase(StatementPhase::kFinished);
  std::lock_guard<std::mutex> lock(mu_);
  statements_.erase(activity->seq());
  std::shared_ptr<SessionRec>& rec = activity->session_;
  if (rec != nullptr) {
    rec->statements_run.fetch_add(1, std::memory_order_relaxed);
    if (rec->in_flight.fetch_sub(1, std::memory_order_relaxed) == 1 &&
        !rec->explicit_open) {
      auto it = sessions_.find(activity->session_id());
      if (it != sessions_.end() && it->second == rec) sessions_.erase(it);
    }
  }
}

std::vector<SessionActivitySnapshot> ActivityRegistry::SnapshotSessions()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionActivitySnapshot> out;
  out.reserve(sessions_.size());
  for (const auto& [id, rec] : sessions_) {
    SessionActivitySnapshot s;
    s.session_id = id;
    s.user = rec->user;
    s.in_flight = rec->in_flight.load(std::memory_order_relaxed);
    s.active = s.in_flight > 0;
    s.statements_run = rec->statements_run.load(std::memory_order_relaxed);
    s.cache_hits = rec->cache_hits.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  // "Current statement" = the oldest in-flight statement per session
  // (lowest seq — seqs are begin-ordered).
  for (const auto& [seq, stmt] : statements_) {
    for (SessionActivitySnapshot& s : out) {
      if (s.session_id == stmt->session_id() &&
          s.current_statement.empty()) {
        s.current_statement = stmt->statement();
        s.current_elapsed_us = stmt->elapsed_us();
      }
    }
  }
  return out;
}

std::vector<StatementActivitySnapshot> ActivityRegistry::SnapshotStatements()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StatementActivitySnapshot> out;
  out.reserve(statements_.size());
  for (const auto& [seq, stmt] : statements_) {
    StatementActivitySnapshot s;
    s.seq = seq;
    s.session_id = stmt->session_id();
    s.user = stmt->user();
    s.statement = stmt->statement();
    s.phase = stmt->phase();
    s.elapsed_us = stmt->elapsed_us();
    s.admission_wait_us = stmt->admission_wait_us();
    s.guard_rows = stmt->guard_rows();
    s.guard_bytes = stmt->guard_bytes();
    const DagProgress& p = stmt->progress();
    s.pipelines_total = p.sets_total.load(std::memory_order_relaxed);
    s.pipelines_done = p.sets_done.load(std::memory_order_relaxed);
    s.queue_wait_us = p.queue_wait_us.load(std::memory_order_relaxed);
    s.run_us = p.run_us.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::shared_ptr<StatementActivity>>
ActivityRegistry::SnapshotHandles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<StatementActivity>> out;
  out.reserve(statements_.size());
  for (const auto& [seq, stmt] : statements_) out.push_back(stmt);
  return out;
}

uint64_t ActivityRegistry::sessions_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

uint64_t ActivityRegistry::statements_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return statements_.size();
}

uint64_t ActivityRegistry::MaxStatementElapsedUs() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t max_us = 0;
  for (const auto& [seq, stmt] : statements_) {
    max_us = std::max(max_us, stmt->elapsed_us());
  }
  return max_us;
}

}  // namespace fgac::common
