#ifndef FGAC_COMMON_VALUE_H_
#define FGAC_COMMON_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace fgac {

/// A runtime SQL value: NULL, BOOLEAN, BIGINT, DOUBLE or VARCHAR.
///
/// Values are small, copyable, and totally ordered by `Compare` (NULLs sort
/// first; cross-numeric-type comparison promotes to double). SQL 3-valued
/// logic is implemented by the SqlEq/SqlLt/... helpers which return
/// std::nullopt for UNKNOWN.
class Value {
 public:
  enum class Kind { kNull = 0, kBool, kInt, kDouble, kString };

  /// Constructs SQL NULL.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }

  Kind kind() const { return static_cast<Kind>(repr_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }

  /// Numeric value widened to double (valid only if is_numeric()).
  double AsDouble() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }

  /// Total order used for sorting and container keys: NULL < BOOL < numeric
  /// < STRING; numerics compare by value across int/double. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Exact equality under the total order (NULL == NULL here, unlike SQL).
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash consistent with operator== (int 3 and double 3.0 collide,
  /// as required since they compare equal).
  size_t Hash() const;

  /// SQL literal rendering: NULL, TRUE, 42, 1.5, 'abc' (quotes escaped).
  std::string ToString() const;

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

/// A tuple of values (one table/operator output row).
using Row = std::vector<Value>;

/// SQL 3-valued comparison: nullopt if either side is NULL.
std::optional<bool> SqlEq(const Value& a, const Value& b);
std::optional<bool> SqlLt(const Value& a, const Value& b);

/// SQL 3-valued AND/OR/NOT over optional<bool> (nullopt = UNKNOWN).
std::optional<bool> SqlAnd(std::optional<bool> a, std::optional<bool> b);
std::optional<bool> SqlOr(std::optional<bool> a, std::optional<bool> b);
std::optional<bool> SqlNot(std::optional<bool> a);

/// Hash functor for Row, consistent with element-wise Value equality.
struct RowHash {
  size_t operator()(const Row& row) const;
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

/// Renders a row as (v1, v2, ...).
std::string RowToString(const Row& row);

}  // namespace fgac

#endif  // FGAC_COMMON_VALUE_H_
