#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace fgac {

namespace {

// Rank in the total order. Numeric kinds share a rank so that 3 == 3.0.
int KindRank(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull:
      return 0;
    case Value::Kind::kBool:
      return 1;
    case Value::Kind::kInt:
    case Value::Kind::kDouble:
      return 2;
    case Value::Kind::kString:
      return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = KindRank(kind()), rb = KindRank(other.kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (kind()) {
    case Kind::kNull:
      return 0;
    case Kind::kBool: {
      bool a = bool_value(), b = other.bool_value();
      if (a == b) return 0;
      return a < b ? -1 : 1;
    }
    case Kind::kInt:
    case Kind::kDouble: {
      if (is_int() && other.is_int()) {
        int64_t a = int_value(), b = other.int_value();
        if (a == b) return 0;
        return a < b ? -1 : 1;
      }
      double a = AsDouble(), b = other.AsDouble();
      if (a == b) return 0;
      return a < b ? -1 : 1;
    }
    case Kind::kString:
      return string_value().compare(other.string_value());
  }
  return 0;
}

size_t Value::Hash() const {
  switch (kind()) {
    case Kind::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case Kind::kBool:
      return bool_value() ? 0x1234567 : 0x89abcde;
    case Kind::kInt: {
      // Hash through double so that equal int/double values collide.
      double d = static_cast<double>(int_value());
      if (static_cast<int64_t>(d) == int_value()) {
        return std::hash<double>()(d);
      }
      return std::hash<int64_t>()(int_value());
    }
    case Kind::kDouble:
      return std::hash<double>()(double_value());
    case Kind::kString:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "NULL";
    case Kind::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case Kind::kInt:
      return std::to_string(int_value());
    case Kind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.10g", double_value());
      std::string s(buf);
      // Keep a trailing ".0" so doubles round-trip as doubles.
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Kind::kString: {
      std::string out = "'";
      for (char c : string_value()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "?";
}

std::optional<bool> SqlEq(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  return a.Compare(b) == 0;
}

std::optional<bool> SqlLt(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  return a.Compare(b) < 0;
}

std::optional<bool> SqlAnd(std::optional<bool> a, std::optional<bool> b) {
  if (a.has_value() && !*a) return false;
  if (b.has_value() && !*b) return false;
  if (a.has_value() && b.has_value()) return true;
  return std::nullopt;
}

std::optional<bool> SqlOr(std::optional<bool> a, std::optional<bool> b) {
  if (a.has_value() && *a) return true;
  if (b.has_value() && *b) return true;
  if (a.has_value() && b.has_value()) return false;
  return std::nullopt;
}

std::optional<bool> SqlNot(std::optional<bool> a) {
  if (!a.has_value()) return std::nullopt;
  return !*a;
}

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0x51ed270b;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace fgac
