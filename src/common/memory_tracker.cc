#include "common/memory_tracker.h"

#include <string>

#include "common/fault_injection.h"

namespace fgac::common {

Status MemoryTracker::Charge(uint64_t n) {
  Status injected = FGAC_FAULT_CHECK("memory.charge");
  if (!injected.ok()) {
    denied_.fetch_add(1, std::memory_order_relaxed);
    return injected;
  }
  uint64_t total = used_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.hard_limit_bytes > 0 && total > limits_.hard_limit_bytes) {
    used_.fetch_sub(n, std::memory_order_relaxed);
    denied_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "global memory limit of " +
        std::to_string(limits_.hard_limit_bytes) + " bytes exceeded (" +
        std::to_string(total) + " bytes in use)");
  }
  uint64_t seen = high_water_.load(std::memory_order_relaxed);
  while (total > seen && !high_water_.compare_exchange_weak(
                             seen, total, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryTracker::Release(uint64_t n) {
  used_.fetch_sub(n, std::memory_order_relaxed);
}

}  // namespace fgac::common
