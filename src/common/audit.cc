#include "common/audit.h"

#include <unistd.h>

#include "common/strings.h"

namespace fgac::common {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

int64_t WallClockMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

uint64_t AuditStatementHash(std::string_view statement) {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (char c : statement) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string AuditHashHex(uint64_t hash) {
  // Fixed-width hex: stable to grep, no signedness surprises.
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(16);
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(hash >> shift) & 0xF]);
  }
  return out;
}

std::string AuditEvent::ToJson() const {
  std::string out = "{\"seq\":" + std::to_string(seq) +
                    ",\"wall_ms\":" + std::to_string(wall_ms) +
                    ",\"user\":" + JsonQuote(user) +
                    ",\"session\":" + JsonQuote(session) +
                    ",\"mode\":" + JsonQuote(mode) +
                    ",\"statement\":" + JsonQuote(statement) +
                    ",\"statement_hash\":\"" + AuditHashHex(statement_hash);
  out += "\",\"verdict\":" + JsonQuote(verdict);
  if (!rules.empty()) out += ",\"rules\":" + JsonQuote(rules);
  out += ",\"probes\":" + std::to_string(probes) +
         ",\"guard_rows\":" + std::to_string(guard_rows) +
         ",\"guard_bytes\":" + std::to_string(guard_bytes) +
         ",\"duration_us\":" + std::to_string(duration_us) +
         ",\"status\":" + JsonQuote(status);
  if (!error.empty()) out += ",\"error\":" + JsonQuote(error);
  if (trace_id != 0) out += ",\"trace_id\":" + std::to_string(trace_id);
  out += ",\"from_cache\":" + std::string(from_cache ? "true" : "false") +
         ",\"rows_out\":" + std::to_string(rows_out) + "}";
  return out;
}

AuditLog::AuditLog(AuditOptions options) : options_(std::move(options)) {
  if (!options_.enabled) return;
  capacity_ = NextPowerOfTwo(options_.ring_capacity < 2 ? 2
                                                        : options_.ring_capacity);
  mask_ = capacity_ - 1;
  cells_ = std::make_unique<Cell[]>(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
  if (!options_.sink_path.empty()) {
    sink_ = std::fopen(options_.sink_path.c_str(), "a");
    // A sink that cannot be opened degrades to in-memory retention; the
    // metrics exporter still shows emitted/persisted so the gap is visible.
  }
  flusher_ = std::thread([this] { FlusherMain(); });
}

AuditLog::~AuditLog() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flusher_mu_);
      stop_ = true;
    }
    flusher_cv_.notify_one();
    flusher_.join();
  }
  if (sink_ != nullptr) {
    std::fflush(sink_);
    if (options_.fsync_each_flush) fsync(fileno(sink_));
    std::fclose(sink_);
  }
}

void AuditLog::Append(AuditEvent event) {
  if (!options_.enabled) return;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (event.wall_ms == 0) event.wall_ms = WallClockMs();
  if (event.statement.size() > options_.max_statement_bytes) {
    event.statement.resize(options_.max_statement_bytes);
    event.statement += "...";
  }

  // Vyukov bounded-queue publish: claim a ticket, move the event into the
  // claimed cell, release it to the consumer by advancing the cell's seq.
  bool published = false;
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    uint64_t seq = cell.seq.load(std::memory_order_acquire);
    int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.event = std::move(event);
        cell.seq.store(pos + 1, std::memory_order_release);
        published = true;
        break;
      }
    } else if (dif < 0) {
      // Ring full: the flusher is behind. Drop rather than stall the query
      // path — the drop counter makes the loss visible and exact.
      break;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
  if (!published) dropped_.fetch_add(1, std::memory_order_release);
  // Counted last so Flush()'s target only covers fully-accounted events.
  emitted_.fetch_add(1, std::memory_order_release);
}

size_t AuditLog::DrainOnce() {
  // Dequeue the whole published run into a local batch first: one
  // retained_mu_ acquisition and one fwrite per drain, not per event —
  // the flusher's interference with query threads (lock hold time,
  // syscalls) stays O(1) per wakeup.
  std::vector<AuditEvent> batch;
  for (;;) {
    Cell& cell = cells_[dequeue_pos_ & mask_];
    uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) -
            static_cast<int64_t>(dequeue_pos_ + 1) !=
        0) {
      break;  // next cell not published yet
    }
    batch.push_back(std::move(cell.event));
    cell.event = AuditEvent{};
    cell.seq.store(dequeue_pos_ + capacity_, std::memory_order_release);
    ++dequeue_pos_;
  }
  if (batch.empty()) return 0;

  if (sink_ != nullptr) {
    std::string lines;
    for (const AuditEvent& event : batch) {
      lines += event.ToJson();
      lines.push_back('\n');
    }
    std::fwrite(lines.data(), 1, lines.size(), sink_);
    std::fflush(sink_);
    if (options_.fsync_each_flush) fsync(fileno(sink_));
  }
  const size_t drained = batch.size();
  {
    std::lock_guard<std::mutex> lock(retained_mu_);
    for (AuditEvent& event : batch) {
      if (retained_.size() >= options_.retain_events) retained_.pop_front();
      retained_.push_back(std::move(event));
    }
  }
  // Published only after the sink flush, so a Flush() that observes the
  // count also observes the bytes in the file.
  persisted_.fetch_add(drained, std::memory_order_release);
  return drained;
}

void AuditLog::FlusherMain() {
  for (;;) {
    DrainOnce();
    std::unique_lock<std::mutex> lock(flusher_mu_);
    flush_done_cv_.notify_all();
    if (stop_) break;
    flusher_cv_.wait_for(lock, options_.flush_interval);
  }
  // Final drain: events appended before the destructor flipped stop_ are
  // persisted, not stranded in the ring.
  DrainOnce();
  std::lock_guard<std::mutex> lock(flusher_mu_);
  flush_done_cv_.notify_all();
}

void AuditLog::Flush() {
  if (!options_.enabled) return;
  const uint64_t target = emitted_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(flusher_mu_);
  while (persisted_.load(std::memory_order_acquire) +
             dropped_.load(std::memory_order_acquire) <
         target) {
    flusher_cv_.notify_one();
    flush_done_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

std::vector<AuditEvent> AuditLog::SnapshotRetained() const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  return std::vector<AuditEvent>(retained_.begin(), retained_.end());
}

}  // namespace fgac::common
