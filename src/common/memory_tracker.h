#ifndef FGAC_COMMON_MEMORY_TRACKER_H_
#define FGAC_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace fgac::common {

/// Process-level memory accounting for one Database: every materialization
/// point that already charges a QueryGuard (hash-join builds, sort/distinct
/// buffers, chunk materialization), plus the columnar snapshot rebuild and
/// the validity checker's memo expansion, also charges here. Approximate by
/// design — it bounds blow-ups, it is not an allocator.
///
/// Two limits form the hierarchy above the per-query QueryLimits:
///  - hard_limit_bytes: a Charge() that would cross it fails with
///    kResourceExhausted — the charging query unwinds through the existing
///    fail-closed path, exactly as if its own budget blew.
///  - soft_limit_bytes: crossing it does not fail charges; it flips
///    overloaded(), which the AdmissionController reads to shed NEW
///    arrivals with kOverloaded until usage drains below the limit.
/// Zero disables a limit. soft <= hard is the intended configuration but
/// is not enforced.
///
/// Thread-safe: all state is relaxed atomics plus one CAS loop for the
/// high-water mark. Releases must match charges; QueryGuard automates this
/// for query-lifetime state (it releases everything it forwarded when it
/// is destroyed), TableData does it for snapshot-lifetime state.
class MemoryTracker {
 public:
  struct Limits {
    /// Crossing it sheds new admissions (overloaded() turns true).
    uint64_t soft_limit_bytes = 0;
    /// Crossing it fails the charge with kResourceExhausted.
    uint64_t hard_limit_bytes = 0;
  };

  MemoryTracker() = default;
  explicit MemoryTracker(const Limits& limits) : limits_(limits) {}
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  const Limits& limits() const { return limits_; }

  /// Charges `n` bytes against the global budget. Fault site
  /// "memory.charge" fires first so tests can drive this error path
  /// deterministically. On failure nothing is charged.
  Status Charge(uint64_t n);

  /// Returns `n` bytes to the budget. Callers release exactly what they
  /// successfully charged.
  void Release(uint64_t n);

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  /// Charges denied by the hard limit (the injected-fault denials count
  /// too — the path is identical from the caller's perspective).
  uint64_t charges_denied() const {
    return denied_.load(std::memory_order_relaxed);
  }

  /// True while usage exceeds the soft limit: the admission controller
  /// sheds new queries until in-flight ones release their state.
  bool overloaded() const {
    return limits_.soft_limit_bytes > 0 &&
           used() > limits_.soft_limit_bytes;
  }

 private:
  Limits limits_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> high_water_{0};
  std::atomic<uint64_t> denied_{0};
};

}  // namespace fgac::common

#endif  // FGAC_COMMON_MEMORY_TRACKER_H_
