#ifndef FGAC_COMMON_STATUS_H_
#define FGAC_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace fgac {

/// Error categories used across the library. Modelled on the Arrow/RocksDB
/// convention: no exceptions cross public API boundaries; every fallible
/// operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  /// Lexical or syntactic error in a SQL string.
  kParseError,
  /// Name resolution / typing error (unknown table, column, type mismatch).
  kBindError,
  /// Catalog-level error (duplicate table, unknown view, bad constraint).
  kCatalogError,
  /// Runtime execution error (division by zero, overflow).
  kExecutionError,
  /// The Non-Truman model rejected the query: it could not be inferred
  /// valid from the user's authorization views (paper Section 4).
  kNotAuthorized,
  /// Constraint violation on update (PK/FK/inclusion dependency).
  kConstraintViolation,
  /// Feature intentionally outside the supported SQL subset.
  kNotImplemented,
  /// Precondition violated by the caller.
  kInvalidArgument,
  /// The query exceeded its wall-clock deadline (QueryLimits::timeout).
  kTimeout,
  /// The query was cancelled cooperatively (QueryGuard::Cancel or a
  /// session cancel token).
  kCancelled,
  /// A row/memory/probe budget was exhausted (QueryLimits, validity
  /// probe caps).
  kResourceExhausted,
  /// An internal invariant failed; the engine degraded instead of
  /// aborting the process.
  kInternal,
  /// The system refused the query at admission: the server is at capacity
  /// (wait queue full, or global memory pressure). Unlike
  /// kResourceExhausted — the query itself blew its budget — this is a
  /// statement about the server, and the message carries a "retry after
  /// Nms" hint (see exec::RetryAfterHintMs).
  kOverloaded,
};

/// Returns a stable human-readable name for `code` (e.g. "NotAuthorized").
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status CatalogError(std::string msg) {
    return Status(StatusCode::kCatalogError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status NotAuthorized(std::string msg) {
    return Status(StatusCode::kNotAuthorized, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace fgac

/// Propagates a non-OK Status to the caller.
#define FGAC_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::fgac::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // FGAC_COMMON_STATUS_H_
