#include "common/thread_pool.h"

#include <algorithm>

namespace fgac::common {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    NoteQueueDepth(queue_.size());
  }
  wake_.notify_one();
}

void ThreadPool::NoteQueueDepth(size_t depth) {
  uint64_t d = depth;
  uint64_t seen = queue_high_water_.load(std::memory_order_relaxed);
  while (d > seen && !queue_high_water_.compare_exchange_weak(
                         seen, d, std::memory_order_relaxed)) {
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  struct Latch {
    std::mutex m;
    std::condition_variable cv;
    size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = tasks.size();
  for (std::function<void()>& task : tasks) {
    Submit([latch, task = std::move(task)] {
      task();
      std::lock_guard<std::mutex> lock(latch->m);
      if (--latch->remaining == 0) latch->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->m);
  latch->cv.wait(lock, [&] { return latch->remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(4, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace fgac::common
