#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace fgac::common {

namespace {

/// Which pool (if any) the current thread is a worker of, and its index.
/// Lets Submit route a worker's follow-up tasks to its own deque.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity t_worker;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  local_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    local_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (t_worker.pool == this) {
    WorkerQueue& q = *local_[t_worker.index];
    std::lock_guard<std::mutex> lock(q.mu);
    q.dq.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    global_.push_back(std::move(task));
  }
  {
    // pending_ moves under mutex_ on the submit side so a worker that just
    // evaluated the sleep predicate cannot miss this task.
    std::lock_guard<std::mutex> lock(mutex_);
    NotePending(pending_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  wake_.notify_one();
}

void ThreadPool::NotePending(size_t depth) {
  uint64_t d = depth;
  uint64_t seen = queue_high_water_.load(std::memory_order_relaxed);
  while (d > seen && !queue_high_water_.compare_exchange_weak(
                         seen, d, std::memory_order_relaxed)) {
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  struct Latch {
    std::mutex m;
    std::condition_variable cv;
    size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = tasks.size();
  for (std::function<void()>& task : tasks) {
    Submit([latch, task = std::move(task)] {
      task();
      std::lock_guard<std::mutex> lock(latch->m);
      if (--latch->remaining == 0) latch->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->m);
  latch->cv.wait(lock, [&] { return latch->remaining == 0; });
}

bool ThreadPool::TryGetTask(size_t self, std::function<void()>* out) {
  // 1. Own deque, newest first: follow-up work a pipeline task just
  //    submitted is still cache-warm.
  {
    WorkerQueue& q = *local_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.dq.empty()) {
      *out = std::move(q.dq.back());
      q.dq.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 2. Global injection queue, oldest first (external FIFO fairness).
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!global_.empty()) {
      *out = std::move(global_.front());
      global_.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 3. Steal from a peer, oldest first (take the coldest work).
  for (size_t i = 1; i < local_.size(); ++i) {
    WorkerQueue& q = *local_[(self + i) % local_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.dq.empty()) {
      *out = std::move(q.dq.front());
      q.dq.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  t_worker.pool = this;
  t_worker.index = self;
  while (true) {
    std::function<void()> task;
    if (TryGetTask(self, &task)) {
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [this] {
      return shutdown_ || pending_.load(std::memory_order_relaxed) > 0;
    });
    if (shutdown_ && pending_.load(std::memory_order_relaxed) == 0) {
      return;  // shutdown and fully drained
    }
    // pending_ > 0: rescan. A peer may win the race for the task, in which
    // case the next wait simply resumes.
  }
}

namespace {

/// Size requested via ConfigureShared before the shared pool's creation.
/// 0 = no request; fall through to FGAC_THREADS, then the hardware default.
std::atomic<size_t> g_shared_pool_request{0};

size_t ResolveSharedPoolSize() {
  size_t requested = g_shared_pool_request.load(std::memory_order_relaxed);
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FGAC_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) {
      return static_cast<size_t>(v);
    }
  }
  return std::max<size_t>(4, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(ResolveSharedPoolSize());
  return *pool;
}

void ThreadPool::ConfigureShared(size_t n) {
  if (n == 0) return;
  g_shared_pool_request.store(n, std::memory_order_relaxed);
}

}  // namespace fgac::common
