#include "common/metrics.h"

#include <bit>
#include <cmath>
#include <functional>

#include "common/strings.h"

namespace fgac::common {

namespace {

size_t BucketOf(uint64_t v) { return v == 0 ? 0 : std::bit_width(v); }

/// Upper bound of bucket i (inclusive range end for percentile reporting).
uint64_t BucketUpper(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~0ull;
  return (1ull << i) - 1;
}

/// Inclusive lower bound of bucket i.
uint64_t BucketLower(size_t i) {
  if (i == 0) return 0;
  return 1ull << (i - 1);
}

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  AppendJsonEscaped(out, name);
  out->append("\":");
}

}  // namespace

void Histogram::Record(uint64_t v) {
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::ApproxPercentile(double p) const {
  // Read the buckets once; the total is derived from the same reads so a
  // concurrent Record() cannot push the target rank past the scanned mass.
  std::array<uint64_t, kBuckets> copy;
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    copy[i] = buckets_[i].load(std::memory_order_relaxed);
    total += copy[i];
  }
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (copy[i] == 0) continue;
    if (seen + copy[i] > rank) {
      // Linear interpolation within the bucket (samples assumed uniform
      // over [lower, upper]): rank_in_bucket 0 of a c-sample bucket maps
      // to lower + width*1/c, the last rank to upper — so p50/p95/p99 in
      // the export move smoothly instead of jumping between power-of-two
      // bucket bounds.
      uint64_t lower = BucketLower(i);
      uint64_t upper = BucketUpper(i);
      uint64_t rank_in_bucket = rank - seen;
      double fraction = static_cast<double>(rank_in_bucket + 1) /
                        static_cast<double>(copy[i]);
      return lower + static_cast<uint64_t>(std::llround(
                         static_cast<double>(upper - lower) * fraction));
    }
    seen += copy[i];
  }
  return BucketUpper(kBuckets - 1);
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(std::string_view name) {
  return shards_[std::hash<std::string_view>()(name) % kShards];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<Counter>& slot = shard.counters[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<Gauge>& slot = shard.gauges[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<Histogram>& slot = shard.histograms[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, c] : shard.counters) {
      snap.counters[name] = c->value();
    }
    for (const auto& [name, g] : shard.gauges) {
      snap.gauges[name] = g->value();
    }
    for (const auto& [name, h] : shard.histograms) {
      MetricsSnapshot::HistogramValue hv;
      hv.count = h->count();
      hv.sum = h->sum();
      hv.p50 = h->ApproxPercentile(50);
      hv.p95 = h->ApproxPercentile(95);
      hv.p99 = h->ApproxPercentile(99);
      for (size_t i = 0; i < Histogram::kBuckets; ++i) {
        hv.buckets[i] = h->bucket(i);
      }
      snap.histograms[name] = hv;
    }
  }
  return snap;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"p50\":" + std::to_string(h.p50) +
           ",\"p95\":" + std::to_string(h.p95) +
           ",\"p99\":" + std::to_string(h.p99) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace fgac::common
