#include "common/metrics.h"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>

#include "common/strings.h"

namespace fgac::common {

namespace {

size_t BucketOf(uint64_t v) { return v == 0 ? 0 : std::bit_width(v); }

/// Upper bound of bucket i (inclusive range end for percentile reporting).
uint64_t BucketUpper(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~0ull;
  return (1ull << i) - 1;
}

/// Inclusive lower bound of bucket i.
uint64_t BucketLower(size_t i) {
  if (i == 0) return 0;
  return 1ull << (i - 1);
}

/// Percentile estimate over an already-copied bucket array: the target
/// rank's bucket is located exactly, then the value is linearly
/// interpolated within the bucket's [2^(i-1), 2^i) range under a
/// uniform-samples assumption.
uint64_t PercentileFromBuckets(
    const std::array<uint64_t, Histogram::kBuckets>& buckets, double p) {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] > rank) {
      uint64_t lower = BucketLower(i);
      uint64_t upper = BucketUpper(i);
      uint64_t rank_in_bucket = rank - seen;
      double fraction = static_cast<double>(rank_in_bucket + 1) /
                        static_cast<double>(buckets[i]);
      return lower + static_cast<uint64_t>(std::llround(
                         static_cast<double>(upper - lower) * fraction));
    }
    seen += buckets[i];
  }
  return BucketUpper(Histogram::kBuckets - 1);
}

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  AppendJsonEscaped(out, name);
  out->append("\":");
}

// --- Prometheus exposition helpers -----------------------------------------

/// Maps a dotted metric name to the stable Prometheus namespace: "fgac_"
/// prefix, every character outside [a-zA-Z0-9_] replaced by '_'.
std::string PromName(const std::string& dotted) {
  std::string out = "fgac_";
  out.reserve(out.size() + dotted.size());
  for (char c : dotted) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendPromType(std::string* out, const std::string& name,
                    const char* type) {
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

void AppendPromLine(std::string* out, const std::string& name,
                    const std::string& labels, uint64_t value) {
  out->append(name);
  out->append(labels);
  out->push_back(' ');
  out->append(std::to_string(value));
  out->push_back('\n');
}

void AppendPromLineF(std::string* out, const std::string& name,
                     const std::string& labels, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out->append(name);
  out->append(labels);
  out->push_back(' ');
  out->append(buf);
  out->push_back('\n');
}

}  // namespace

// --- MetricWindow ----------------------------------------------------------

uint64_t MetricWindow::EpochNow() {
  auto since = std::chrono::steady_clock::now().time_since_epoch();
  uint64_t secs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(since).count());
  return secs / kEpochSeconds;
}

// --- Counter ---------------------------------------------------------------

void Counter::IncrementAtEpoch(uint64_t n, uint64_t epoch) {
  // Cumulative first, then the window slot with release order: a reader
  // that observes the slot update (acquire) is guaranteed to also observe
  // the cumulative update, which keeps windowed <= cumulative.
  v_.fetch_add(n, std::memory_order_relaxed);
  Slot& slot = ring_[epoch % MetricWindow::kRing];
  uint64_t cur = slot.epoch.load(std::memory_order_acquire);
  if (cur != epoch) {
    // First write of a new epoch claims the slot; the winner zeroes the
    // stale value. Updates racing the takeover may be dropped from the
    // window sums (never from the cumulative value).
    if (slot.epoch.compare_exchange_strong(cur, epoch,
                                           std::memory_order_acq_rel)) {
      slot.v.store(0, std::memory_order_relaxed);
    }
  }
  slot.v.fetch_add(n, std::memory_order_release);
}

std::array<uint64_t, MetricWindow::kCount> Counter::WindowedAtEpoch(
    uint64_t epoch) const {
  std::array<uint64_t, MetricWindow::kCount> out{};
  for (size_t i = 0; i < MetricWindow::kRing; ++i) {
    uint64_t e = ring_[i].epoch.load(std::memory_order_acquire);
    if (e == MetricWindow::kNoEpoch || e > epoch) continue;
    uint64_t age = epoch - e;  // 0 = the current epoch
    if (age >= MetricWindow::kEpochs.back()) continue;
    uint64_t v = ring_[i].v.load(std::memory_order_acquire);
    for (size_t w = 0; w < MetricWindow::kCount; ++w) {
      if (age < MetricWindow::kEpochs[w]) out[w] += v;
    }
  }
  return out;
}

// --- Histogram -------------------------------------------------------------

void Histogram::RecordAtEpoch(uint64_t v, uint64_t epoch) {
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);

  Slot& slot = ring_[epoch % MetricWindow::kRing];
  uint64_t cur = slot.epoch.load(std::memory_order_acquire);
  if (cur != epoch) {
    if (slot.epoch.compare_exchange_strong(cur, epoch,
                                           std::memory_order_acq_rel)) {
      for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
      slot.sum.store(0, std::memory_order_relaxed);
      slot.count.store(0, std::memory_order_relaxed);
    }
  }
  slot.buckets[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(v, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_release);
}

uint64_t Histogram::ApproxPercentile(double p) const {
  // Read the buckets once; the total is derived from the same reads so a
  // concurrent Record() cannot push the target rank past the scanned mass.
  std::array<uint64_t, kBuckets> copy;
  for (size_t i = 0; i < kBuckets; ++i) {
    copy[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return PercentileFromBuckets(copy, p);
}

std::array<Histogram::WindowValue, MetricWindow::kCount>
Histogram::WindowedAtEpoch(uint64_t epoch) const {
  std::array<std::array<uint64_t, kBuckets>, MetricWindow::kCount> merged{};
  std::array<WindowValue, MetricWindow::kCount> out{};
  for (size_t i = 0; i < MetricWindow::kRing; ++i) {
    const Slot& slot = ring_[i];
    uint64_t e = slot.epoch.load(std::memory_order_acquire);
    if (e == MetricWindow::kNoEpoch || e > epoch) continue;
    uint64_t age = epoch - e;
    if (age >= MetricWindow::kEpochs.back()) continue;
    uint64_t count = slot.count.load(std::memory_order_acquire);
    uint64_t sum = slot.sum.load(std::memory_order_relaxed);
    std::array<uint64_t, kBuckets> copy;
    for (size_t b = 0; b < kBuckets; ++b) {
      copy[b] = slot.buckets[b].load(std::memory_order_relaxed);
    }
    for (size_t w = 0; w < MetricWindow::kCount; ++w) {
      if (age >= MetricWindow::kEpochs[w]) continue;
      out[w].count += count;
      out[w].sum += sum;
      for (size_t b = 0; b < kBuckets; ++b) merged[w][b] += copy[b];
    }
  }
  for (size_t w = 0; w < MetricWindow::kCount; ++w) {
    out[w].p50 = PercentileFromBuckets(merged[w], 50);
    out[w].p95 = PercentileFromBuckets(merged[w], 95);
    out[w].p99 = PercentileFromBuckets(merged[w], 99);
  }
  return out;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry::Shard& MetricsRegistry::ShardFor(std::string_view name) {
  return shards_[std::hash<std::string_view>()(name) % kShards];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<Counter>& slot = shard.counters[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<Gauge>& slot = shard.gauges[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<Histogram>& slot = shard.histograms[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  uint64_t epoch = MetricWindow::EpochNow();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, c] : shard.counters) {
      // Window sums are read before the cumulative value so the exported
      // windowed <= cumulative invariant holds under concurrent updates.
      snap.counter_windows[name] = c->WindowedAtEpoch(epoch);
      snap.counters[name] = c->value();
    }
    for (const auto& [name, g] : shard.gauges) {
      snap.gauges[name] = g->value();
    }
    for (const auto& [name, h] : shard.histograms) {
      MetricsSnapshot::HistogramValue hv;
      hv.windows = h->WindowedAtEpoch(epoch);
      hv.count = h->count();
      hv.sum = h->sum();
      hv.p50 = h->ApproxPercentile(50);
      hv.p95 = h->ApproxPercentile(95);
      hv.p99 = h->ApproxPercentile(99);
      for (size_t i = 0; i < Histogram::kBuckets; ++i) {
        hv.buckets[i] = h->bucket(i);
      }
      snap.histograms[name] = hv;
    }
  }
  return snap;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"p50\":" + std::to_string(h.p50) +
           ",\"p95\":" + std::to_string(h.p95) +
           ",\"p99\":" + std::to_string(h.p99);
    for (size_t w = 0; w < MetricWindow::kCount; ++w) {
      out += ",\"w";
      out += MetricWindow::kNames[w];
      out += "\":{\"count\":" + std::to_string(h.windows[w].count) +
             ",\"p50\":" + std::to_string(h.windows[w].p50) +
             ",\"p95\":" + std::to_string(h.windows[w].p95) +
             ",\"p99\":" + std::to_string(h.windows[w].p99) + "}";
    }
    out += "}";
  }
  out += "},\"windows\":{";
  for (size_t w = 0; w < MetricWindow::kCount; ++w) {
    if (w != 0) out.push_back(',');
    out.push_back('"');
    out += MetricWindow::kNames[w];
    out += "\":{";
    first = true;
    for (const auto& [name, values] : counter_windows) {
      if (!first) out.push_back(',');
      first = false;
      AppendJsonKey(&out, name);
      out += std::to_string(values[w]);
    }
    out += "}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, v] : counters) {
    std::string prom = PromName(name);
    AppendPromType(&out, prom + "_total", "counter");
    AppendPromLine(&out, prom + "_total", "", v);
    auto windows = counter_windows.find(name);
    if (windows != counter_windows.end()) {
      // Per-window rate in events/second: count in window / window width.
      AppendPromType(&out, prom + "_rate", "gauge");
      for (size_t w = 0; w < MetricWindow::kCount; ++w) {
        double seconds = static_cast<double>(MetricWindow::kEpochs[w]) *
                         static_cast<double>(MetricWindow::kEpochSeconds);
        std::string labels = "{window=\"";
        labels += MetricWindow::kNames[w];
        labels += "\"}";
        AppendPromLineF(&out, prom + "_rate", labels,
                        static_cast<double>(windows->second[w]) / seconds);
      }
    }
  }
  for (const auto& [name, v] : gauges) {
    std::string prom = PromName(name);
    AppendPromType(&out, prom, "gauge");
    out.append(prom);
    out.push_back(' ');
    out.append(std::to_string(v));
    out.push_back('\n');
  }
  for (const auto& [name, h] : histograms) {
    std::string prom = PromName(name);
    AppendPromType(&out, prom, "summary");
    AppendPromLine(&out, prom, "{quantile=\"0.5\"}", h.p50);
    AppendPromLine(&out, prom, "{quantile=\"0.95\"}", h.p95);
    AppendPromLine(&out, prom, "{quantile=\"0.99\"}", h.p99);
    AppendPromLine(&out, prom + "_sum", "", h.sum);
    AppendPromLine(&out, prom + "_count", "", h.count);
    AppendPromType(&out, prom + "_windowed", "gauge");
    AppendPromType(&out, prom + "_windowed_count", "gauge");
    for (size_t w = 0; w < MetricWindow::kCount; ++w) {
      std::string window = "window=\"";
      window += MetricWindow::kNames[w];
      window += "\"";
      AppendPromLine(&out, prom + "_windowed",
                     "{" + window + ",quantile=\"0.5\"}", h.windows[w].p50);
      AppendPromLine(&out, prom + "_windowed",
                     "{" + window + ",quantile=\"0.95\"}", h.windows[w].p95);
      AppendPromLine(&out, prom + "_windowed",
                     "{" + window + ",quantile=\"0.99\"}", h.windows[w].p99);
      AppendPromLine(&out, prom + "_windowed_count", "{" + window + "}",
                     h.windows[w].count);
    }
  }
  return out;
}

}  // namespace fgac::common
