#ifndef FGAC_COMMON_TRACE_H_
#define FGAC_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace fgac::common {

/// One completed span of a traced query: a named interval with trace-id /
/// span-id / parent-id linkage. Spans are recorded when they END (so a
/// parent's duration covers its children) and retained by the owning
/// Tracer for the `fgac_spans` system table and Chrome-trace export.
struct TraceSpan {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  /// 0 = root span of its trace.
  uint64_t parent_id = 0;
  /// Dotted hierarchical name: "query", "validity.check", "rule.U1",
  /// "validity.probe_batch", "truman.rewrite", "exec", "exec.worker".
  std::string name;
  /// Free-form context (rule justification, worker index, probe count).
  std::string detail;
  /// The session user the traced statement ran as — spans inherit it from
  /// the trace context so `fgac_spans` can be FGAC-governed per user.
  std::string user;
  /// Microseconds since the owning Tracer's epoch.
  int64_t start_us = 0;
  int64_t dur_us = 0;
  /// Stable small id of the recording thread (Chrome-trace "tid").
  uint64_t thread_id = 0;
};

/// Thread-safe span collector with bounded retention: any worker thread may
/// Record() concurrently; the newest `retain_spans` spans are kept (oldest
/// evicted, counted in spans_dropped) so a long-lived Database cannot grow
/// without bound. Ids are process-unique within the Tracer.
class Tracer {
 public:
  static constexpr size_t kDefaultRetainSpans = 8192;

  explicit Tracer(size_t retain_spans = kDefaultRetainSpans)
      : retain_spans_(retain_spans == 0 ? 1 : retain_spans),
        epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  uint64_t NewTraceId() { return next_id_.fetch_add(1) + 1; }
  uint64_t NewSpanId() { return next_id_.fetch_add(1) + 1; }

  /// Microseconds since this tracer was created (span timestamps).
  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void Record(TraceSpan span);

  uint64_t spans_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t spans_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Copies the retained spans, oldest first. Safe against concurrent
  /// Record() calls.
  std::vector<TraceSpan> Snapshot() const;

  /// Renders every retained span as one Chrome-trace / Perfetto JSON
  /// document ({"traceEvents":[...]}, "X" complete events): save it to a
  /// file and load it in ui.perfetto.dev or chrome://tracing.
  std::string ToChromeTraceJson() const;

  void Clear();

 private:
  const size_t retain_spans_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::deque<TraceSpan> spans_;
};

/// The ambient trace position a subsystem records spans under: which
/// tracer, which trace, and which span is the parent. Passed by const
/// pointer through the engine; nullptr (or a default-constructed context)
/// means tracing is off and every span helper is a no-op.
struct TraceContext {
  Tracer* tracer = nullptr;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  std::string user;

  bool active() const { return tracer != nullptr; }
};

/// RAII span: times its own scope and records into the context's tracer on
/// destruction. Null/inactive context = no-op. ChildContext() yields the
/// context for spans nested under this one — take it AFTER construction
/// and use it only within this span's lifetime.
class ScopedSpan {
 public:
  ScopedSpan(const TraceContext* ctx, std::string name);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  bool active() const { return ctx_ != nullptr && ctx_->active(); }
  uint64_t span_id() const { return span_id_; }
  void set_detail(std::string detail) { detail_ = std::move(detail); }

  TraceContext ChildContext() const;

 private:
  const TraceContext* ctx_;
  std::string name_;
  std::string detail_;
  uint64_t span_id_ = 0;
  int64_t start_us_ = 0;
};

/// Records an instantaneous (zero-duration) event span under `ctx` — used
/// for rule firings, which are decisions rather than intervals.
void RecordInstantSpan(const TraceContext* ctx, std::string name,
                       std::string detail);

/// Stable small integer for the calling thread (Chrome-trace tid).
uint64_t CurrentThreadId();

}  // namespace fgac::common

#endif  // FGAC_COMMON_TRACE_H_
