#include "common/status.h"

namespace fgac {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kCatalogError:
      return "CatalogError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kNotAuthorized:
      return "NotAuthorized";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace fgac
