#include "common/trace.h"

#include <thread>

#include "common/strings.h"

namespace fgac::common {

void Tracer::Record(TraceSpan span) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= retain_spans_) {
    spans_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceSpan>(spans_.begin(), spans_.end());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceSpan> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":" + JsonQuote(s.name) +
           ",\"cat\":\"fgac\",\"ph\":\"X\",\"ts\":" +
           std::to_string(s.start_us) + ",\"dur\":" + std::to_string(s.dur_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(s.thread_id) +
           ",\"args\":{\"trace_id\":" + std::to_string(s.trace_id) +
           ",\"span_id\":" + std::to_string(s.span_id) +
           ",\"parent_id\":" + std::to_string(s.parent_id) +
           ",\"user\":" + JsonQuote(s.user);
    if (!s.detail.empty()) out += ",\"detail\":" + JsonQuote(s.detail);
    out += "}}";
  }
  out += "]}";
  return out;
}

ScopedSpan::ScopedSpan(const TraceContext* ctx, std::string name)
    : ctx_(ctx), name_(std::move(name)) {
  if (!active()) return;
  span_id_ = ctx_->tracer->NewSpanId();
  start_us_ = ctx_->tracer->NowUs();
}

ScopedSpan::~ScopedSpan() {
  if (!active()) return;
  TraceSpan span;
  span.trace_id = ctx_->trace_id;
  span.span_id = span_id_;
  span.parent_id = ctx_->parent_span;
  span.name = std::move(name_);
  span.detail = std::move(detail_);
  span.user = ctx_->user;
  span.start_us = start_us_;
  span.dur_us = ctx_->tracer->NowUs() - start_us_;
  span.thread_id = CurrentThreadId();
  ctx_->tracer->Record(std::move(span));
}

TraceContext ScopedSpan::ChildContext() const {
  if (!active()) return TraceContext{};
  TraceContext child = *ctx_;
  child.parent_span = span_id_;
  return child;
}

void RecordInstantSpan(const TraceContext* ctx, std::string name,
                       std::string detail) {
  if (ctx == nullptr || !ctx->active()) return;
  TraceSpan span;
  span.trace_id = ctx->trace_id;
  span.span_id = ctx->tracer->NewSpanId();
  span.parent_id = ctx->parent_span;
  span.name = std::move(name);
  span.detail = std::move(detail);
  span.user = ctx->user;
  span.start_us = ctx->tracer->NowUs();
  span.dur_us = 0;
  span.thread_id = CurrentThreadId();
  ctx->tracer->Record(std::move(span));
}

uint64_t CurrentThreadId() {
  // Dense per-process numbering: the first thread to ask gets 1, the next
  // 2, ... — stable for the thread's lifetime and small enough to read as
  // a Chrome-trace tid.
  static std::atomic<uint64_t> next{0};
  thread_local uint64_t id = next.fetch_add(1) + 1;
  return id;
}

}  // namespace fgac::common
