#include "common/fault_injection.h"

#include <utility>

namespace fgac::common {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::FailOnHit(const std::string& site, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  Arm arm;
  arm.mode = Mode::kFailOnHit;
  arm.nth = nth == 0 ? 1 : nth;
  arms_[site] = std::move(arm);
}

void FaultInjector::FailWithProbability(const std::string& site, double p,
                                        uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  Arm arm;
  arm.mode = Mode::kFailWithProbability;
  arm.probability = p;
  arm.rng.seed(seed);
  arms_[site] = std::move(arm);
}

void FaultInjector::OnHit(const std::string& site,
                          std::function<void()> callback, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  Arm arm;
  arm.mode = Mode::kCallback;
  arm.nth = nth == 0 ? 1 : nth;
  arm.callback = std::move(callback);
  arms_[site] = std::move(arm);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  arms_.erase(site);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  arms_.clear();
  hits_.clear();
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::AllHitCounts()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out(hits_.begin(),
                                                    hits_.end());
  return out;
}

Status FaultInjector::Hit(const char* site) {
  std::function<void()> fire;
  Status injected = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_[site];
    auto it = arms_.find(site);
    if (it != arms_.end()) {
      Arm& arm = it->second;
      ++arm.hits_seen;
      switch (arm.mode) {
        case Mode::kFailOnHit:
          if (arm.hits_seen == arm.nth) {
            injected = Status::Internal(std::string("fault injected at '") +
                                        site + "'");
            arms_.erase(it);
          }
          break;
        case Mode::kFailWithProbability: {
          std::uniform_real_distribution<double> dist(0.0, 1.0);
          if (dist(arm.rng) < arm.probability) {
            injected = Status::Internal(std::string("fault injected at '") +
                                        site + "'");
          }
          break;
        }
        case Mode::kCallback:
          if (arm.hits_seen == arm.nth) {
            fire = std::move(arm.callback);
            arms_.erase(it);
          }
          break;
      }
    }
  }
  // Run callbacks outside the lock: they may re-arm sites or poke other
  // subsystems that hit fault points themselves.
  if (fire) fire();
  return injected;
}

}  // namespace fgac::common
