#ifndef FGAC_COMMON_QUERY_GUARD_H_
#define FGAC_COMMON_QUERY_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace fgac::common {

/// What the gateway does when the Non-Truman validity test (paper
/// Section 4-5) cannot finish within its budget: the principled choices
/// are to reject outright, or to fall back to the Truman model
/// (Section 3) — answer the query against the user's policy views and
/// label the result as filtered. Never hang, never crash.
enum class DegradePolicy {
  /// Budget exhaustion surfaces as kTimeout / kResourceExhausted.
  kReject,
  /// Re-run the query through the Truman rewriter; the (possibly
  /// misleading but access-control-sound) answer is flagged as filtered.
  kTruman,
};

const char* DegradePolicyName(DegradePolicy policy);

/// Per-query resource limits. Zero means "unlimited" for every field, so
/// a default-constructed QueryLimits imposes nothing.
struct QueryLimits {
  /// Wall-clock deadline measured from QueryGuard construction.
  /// Microsecond granularity so tests can set deadlines that have
  /// deterministically expired by the first guard check.
  std::chrono::microseconds timeout{0};
  /// Budget on rows flowing out of pipeline sources and join/aggregate
  /// materialization points — a work bound, not a result-size cap
  /// (use LIMIT for that).
  uint64_t max_rows = 0;
  /// Budget on bytes of materialized execution state (hash-join builds,
  /// sort/distinct/aggregate buffers). Approximate by design: it bounds
  /// blow-ups, it is not an allocator.
  uint64_t max_memory_bytes = 0;
  /// Degradation policy when the *validity check* exhausts its budget.
  DegradePolicy degrade_policy = DegradePolicy::kReject;

  bool has_timeout() const { return timeout.count() > 0; }
  bool Unlimited() const {
    return !has_timeout() && max_rows == 0 && max_memory_bytes == 0;
  }
};

/// Cooperative guardrail for one query: deadline, cancellation flag and
/// row/byte budget counters. Operators call Check() once per DataChunk
/// and Charge*() at materialization points; every call is cheap (atomic
/// loads, one clock read when a deadline is set) and thread-safe, so one
/// guard is shared by all morsel workers of a parallel plan.
///
/// Guards form a tree: a child guard (e.g. for a validity probe) inherits
/// its parent's cancellation and never outlives the parent's deadline,
/// but keeps its own row/byte budgets so a probe cannot eat the user
/// query's allowance.
class QueryGuard {
 public:
  QueryGuard() : QueryGuard(QueryLimits{}) {}
  explicit QueryGuard(const QueryLimits& limits,
                      const QueryGuard* parent = nullptr);
  ~QueryGuard();
  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  const QueryLimits& limits() const { return limits_; }

  /// Requests cooperative cancellation; safe from any thread. The query
  /// observes it at its next Check() and unwinds with kCancelled.
  void Cancel() { cancel_->store(true, std::memory_order_release); }

  /// Additionally observe an external token (e.g. a session-owned flag
  /// another thread flips). Not thread-safe against concurrent Check();
  /// attach before execution starts.
  void AttachExternalCancel(std::shared_ptr<std::atomic<bool>> token) {
    external_cancel_ = std::move(token);
  }

  bool cancelled() const;

  /// Deadline + cancellation check. Sticky: once it fails, it keeps
  /// failing, so late workers observing an already-tripped guard unwind
  /// with the same code.
  Status Check() const;

  /// Charges `n` rows against the row budget (then performs Check()).
  Status ChargeRows(uint64_t n);

  /// Charges `n` bytes of materialized state against the memory budget.
  /// When a MemoryTracker is attached (directly or inherited from the
  /// parent), the bytes are also charged globally — and released en bloc
  /// when this guard is destroyed, so query-lifetime state never outlives
  /// the query in the global account.
  Status ChargeBytes(uint64_t n);

  /// Attaches the process-wide memory account. Not thread-safe against
  /// concurrent Charge; attach before execution starts. Children created
  /// after attachment inherit it.
  void set_memory_tracker(MemoryTracker* tracker) { tracker_ = tracker; }
  MemoryTracker* memory_tracker() const { return tracker_; }

  uint64_t rows_charged() const {
    return rows_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  QueryLimits limits_;
  const QueryGuard* parent_ = nullptr;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::shared_ptr<std::atomic<bool>> cancel_;
  std::shared_ptr<std::atomic<bool>> external_cancel_;
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> bytes_{0};
  MemoryTracker* tracker_ = nullptr;
  /// Bytes successfully forwarded to tracker_; released on destruction.
  std::atomic<uint64_t> tracker_charged_{0};
};

/// Guards are optional throughout the engine: a null guard means "no
/// limits" and costs one pointer compare.
inline Status GuardCheck(const QueryGuard* guard) {
  return guard == nullptr ? Status::OK() : guard->Check();
}
inline Status GuardChargeRows(QueryGuard* guard, uint64_t n) {
  return guard == nullptr ? Status::OK() : guard->ChargeRows(n);
}
inline Status GuardChargeBytes(QueryGuard* guard, uint64_t n) {
  return guard == nullptr ? Status::OK() : guard->ChargeBytes(n);
}

/// Rough per-row footprint of materialized Row state (vector header plus
/// `arity` Value slots); used by Charge-Bytes call sites so the memory
/// budget tracks the dominant term without instrumenting allocators.
uint64_t ApproxRowBytes(size_t arity);

}  // namespace fgac::common

#endif  // FGAC_COMMON_QUERY_GUARD_H_
