#ifndef FGAC_COMMON_ACTIVITY_H_
#define FGAC_COMMON_ACTIVITY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fgac::common {

/// Where an in-flight statement currently is. Stamped lock-free by the
/// executing thread, read by snapshots and the watchdog.
enum class StatementPhase : uint32_t {
  kQueued = 0,    // waiting for an admission slot
  kValidity = 1,  // validity check / rewrite decision
  kRewrite = 2,   // Truman rewrite / plan preparation
  kExec = 3,      // executing pipelines
  kFinished = 4,
};

const char* StatementPhaseName(StatementPhase phase);

namespace activity_internal {
/// Shared per-session accumulator: statements hold a reference so cache
/// hits / completions attribute to the right session even while the
/// registry map churns.
struct SessionRec {
  std::string session_id;
  std::string user;
  bool explicit_open = false;
  std::atomic<uint64_t> in_flight{0};
  std::atomic<uint64_t> statements_run{0};
  std::atomic<uint64_t> cache_hits{0};
};
}  // namespace activity_internal

/// Live progress counters for one statement's pipeline DAGs. Written by
/// the scheduler (DagOptions::progress), read by fgac_activity snapshots
/// and the stall watchdog. Plain relaxed atomics: per-field values never
/// tear; cross-field consistency is monitoring-grade.
struct DagProgress {
  std::atomic<uint64_t> sets_total{0};
  std::atomic<uint64_t> sets_done{0};
  /// Wall-time attribution per task: time between a task entering the
  /// fair queue and a worker popping it vs time spent running the task.
  std::atomic<uint64_t> queue_wait_us{0};
  std::atomic<uint64_t> run_us{0};
};

class ActivityRegistry;

/// One in-flight statement's live record. The executing thread stamps the
/// phase and guard charges with relaxed atomics (no locks on the statement
/// path); snapshot readers and the watchdog only ever read whole atomic
/// values, so a concurrent stamp never tears a snapshot.
class StatementActivity {
 public:
  uint64_t seq() const { return seq_; }
  const std::string& session_id() const { return session_id_; }
  const std::string& user() const { return user_; }
  const std::string& statement() const { return statement_; }

  void set_phase(StatementPhase p) {
    phase_.store(static_cast<uint32_t>(p), std::memory_order_release);
  }
  StatementPhase phase() const {
    return static_cast<StatementPhase>(
        phase_.load(std::memory_order_acquire));
  }

  /// Copies the statement's guard charges so far. Called at phase
  /// transitions and completion — the registry never holds a pointer into
  /// the (stack-owned) QueryGuard itself.
  void StampGuard(uint64_t rows, uint64_t bytes) {
    guard_rows_.store(rows, std::memory_order_relaxed);
    guard_bytes_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t guard_rows() const {
    return guard_rows_.load(std::memory_order_relaxed);
  }
  uint64_t guard_bytes() const {
    return guard_bytes_.load(std::memory_order_relaxed);
  }

  void set_admission_wait_us(uint64_t us) {
    admission_wait_us_.store(us, std::memory_order_relaxed);
  }
  uint64_t admission_wait_us() const {
    return admission_wait_us_.load(std::memory_order_relaxed);
  }

  /// The statement's deadline (from its QueryLimits timeout), 0 if none.
  /// The watchdog scales this by its deadline factor to decide stalls.
  void set_deadline_us(uint64_t us) {
    deadline_us_.store(us, std::memory_order_relaxed);
  }
  uint64_t deadline_us() const {
    return deadline_us_.load(std::memory_order_relaxed);
  }

  /// Notes a statement-cache (verdict or Truman-plan) hit for the session.
  void NoteCacheHit();

  uint64_t elapsed_us() const;

  DagProgress& progress() { return progress_; }
  const DagProgress& progress() const { return progress_; }

  /// Watchdog bookkeeping: one stall report per statement.
  bool TryMarkStalled() {
    return !stall_reported_.exchange(true, std::memory_order_acq_rel);
  }

 private:
  friend class ActivityRegistry;

  StatementActivity(uint64_t seq, std::string session_id, std::string user,
                    std::string statement,
                    std::shared_ptr<activity_internal::SessionRec> session);

  const uint64_t seq_;
  const std::string session_id_;
  const std::string user_;
  const std::string statement_;
  const std::chrono::steady_clock::time_point started_;
  std::shared_ptr<activity_internal::SessionRec> session_;

  std::atomic<uint32_t> phase_{static_cast<uint32_t>(StatementPhase::kQueued)};
  std::atomic<uint64_t> guard_rows_{0};
  std::atomic<uint64_t> guard_bytes_{0};
  std::atomic<uint64_t> admission_wait_us_{0};
  std::atomic<uint64_t> deadline_us_{0};
  std::atomic<bool> stall_reported_{false};
  DagProgress progress_;
};

/// Row of the fgac_sessions system table.
struct SessionActivitySnapshot {
  std::string session_id;
  std::string user;
  bool active = false;  // at least one in-flight statement
  uint64_t in_flight = 0;
  uint64_t statements_run = 0;  // completed statements
  uint64_t cache_hits = 0;      // statement-cache hits attributed here
  std::string current_statement;  // oldest in-flight statement, if any
  uint64_t current_elapsed_us = 0;
};

/// Row of the fgac_activity system table.
struct StatementActivitySnapshot {
  uint64_t seq = 0;
  std::string session_id;
  std::string user;
  std::string statement;
  StatementPhase phase = StatementPhase::kQueued;
  uint64_t elapsed_us = 0;
  uint64_t admission_wait_us = 0;
  uint64_t guard_rows = 0;
  uint64_t guard_bytes = 0;
  uint64_t pipelines_total = 0;
  uint64_t pipelines_done = 0;
  uint64_t queue_wait_us = 0;
  uint64_t run_us = 0;
};

/// Live registry of sessions and in-flight statements behind fgac_sessions
/// / fgac_activity. Session records are opened explicitly by the server's
/// ConnectionManager and implicitly by any SessionContext that runs a
/// statement outside a server session (implicit records disappear when
/// their last statement finishes; explicit ones persist until
/// CloseSession).
///
/// Locking: one registry mutex guards the two maps and is only taken at
/// statement begin/end, session open/close, and snapshot time — phase /
/// guard / progress stamping on the statement path is pure atomics on the
/// StatementActivity handle.
class ActivityRegistry {
 public:
  ActivityRegistry() = default;
  ActivityRegistry(const ActivityRegistry&) = delete;
  ActivityRegistry& operator=(const ActivityRegistry&) = delete;

  void OpenSession(const std::string& session_id, const std::string& user);
  void CloseSession(const std::string& session_id);

  /// Registers one in-flight statement (implicitly opening a session
  /// record if needed). The handle stays valid after EndStatement; only
  /// the registry's index entry is dropped.
  std::shared_ptr<StatementActivity> BeginStatement(
      const std::string& session_id, const std::string& user,
      const std::string& statement);
  void EndStatement(const std::shared_ptr<StatementActivity>& activity);

  std::vector<SessionActivitySnapshot> SnapshotSessions() const;
  std::vector<StatementActivitySnapshot> SnapshotStatements() const;
  /// Live handles of the in-flight statements (the watchdog reads the
  /// atomics directly and marks stalls on the shared record).
  std::vector<std::shared_ptr<StatementActivity>> SnapshotHandles() const;

  uint64_t sessions_open() const;
  uint64_t statements_active() const;
  uint64_t statements_begun() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// Longest-running in-flight statement right now, 0 when idle.
  uint64_t MaxStatementElapsedUs() const;

 private:
  /// Statement text clip for the registry (full text lives in the audit
  /// log); bounds fgac_sessions / fgac_activity memory.
  static constexpr size_t kMaxStatementBytes = 512;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<activity_internal::SessionRec>>
      sessions_;
  std::map<uint64_t, std::shared_ptr<StatementActivity>> statements_;
  std::atomic<uint64_t> next_seq_{0};
};

}  // namespace fgac::common

#endif  // FGAC_COMMON_ACTIVITY_H_
