#ifndef FGAC_COMMON_FAULT_INJECTION_H_
#define FGAC_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

/// Deterministic fault-injection layer. Named sites are sprinkled through
/// storage rebuild, hash-join build, validity-probe execution and
/// thread-pool dispatch; tests arm a site to fail on its Nth hit, with a
/// seeded probability, or to run a callback (e.g. flip a cancel token at
/// an exact execution point).
///
/// Sites are compiled into unoptimized builds (Debug / sanitizer, where
/// NDEBUG is not defined) and into any build configured with
/// -DFGAC_FAULT_INJECTION=ON; elsewhere the macros expand to nothing and
/// cost zero. Tests that need the layer should skip when
/// FaultInjector::compiled_in() is false.
#if defined(FGAC_FAULT_INJECTION_BUILD) || !defined(NDEBUG)
#define FGAC_FAULT_SITES_ENABLED 1
#else
#define FGAC_FAULT_SITES_ENABLED 0
#endif

namespace fgac::common {

class FaultInjector {
 public:
  /// Process-wide injector (sites are macro-addressed, so a singleton is
  /// the only practical registry). Tests must Reset() between cases.
  static FaultInjector& Instance();

  static constexpr bool compiled_in() { return FGAC_FAULT_SITES_ENABLED != 0; }

  /// Arms `site` to fail exactly once, on its `nth` (1-based) hit from
  /// now. Later hits pass.
  void FailOnHit(const std::string& site, uint64_t nth = 1);

  /// Arms `site` to fail each hit independently with probability `p`,
  /// driven by a private RNG seeded with `seed` (deterministic runs).
  void FailWithProbability(const std::string& site, double p, uint64_t seed);

  /// Arms `site` to invoke `callback` (without failing) on its `nth` hit
  /// from now, then disarm. Used to trigger cancellation or state flips
  /// at a deterministic execution point.
  void OnHit(const std::string& site, std::function<void()> callback,
             uint64_t nth = 1);

  void Disarm(const std::string& site);

  /// Disarms every site and zeroes all hit counters.
  void Reset();

  /// Total hits observed at `site` since the last Reset().
  uint64_t HitCount(const std::string& site) const;

  /// Snapshot of every site with at least one hit since the last Reset(),
  /// for export into the metrics registry.
  std::vector<std::pair<std::string, uint64_t>> AllHitCounts() const;

  /// Called by the FGAC_FAULT_POINT/FGAC_FAULT_CHECK macros: counts the
  /// hit and returns the injected failure if the site is armed and
  /// triggered, OK otherwise.
  Status Hit(const char* site);

 private:
  FaultInjector() = default;

  enum class Mode { kFailOnHit, kFailWithProbability, kCallback };
  struct Arm {
    Mode mode;
    uint64_t hits_seen = 0;
    uint64_t nth = 1;
    double probability = 0.0;
    std::mt19937_64 rng;
    std::function<void()> callback;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Arm> arms_;
  std::unordered_map<std::string, uint64_t> hits_;
};

}  // namespace fgac::common

#if FGAC_FAULT_SITES_ENABLED
/// Statement form: returns the injected Status from the enclosing
/// function. Use inside Status/Result-returning code.
#define FGAC_FAULT_POINT(site)                                       \
  do {                                                               \
    ::fgac::Status _fgac_fi =                                        \
        ::fgac::common::FaultInjector::Instance().Hit(site);         \
    if (!_fgac_fi.ok()) return _fgac_fi;                             \
  } while (0)
/// Expression form: evaluates to the site's Status for call sites that
/// cannot early-return (e.g. void thread-pool tasks).
#define FGAC_FAULT_CHECK(site) \
  (::fgac::common::FaultInjector::Instance().Hit(site))
#else
#define FGAC_FAULT_POINT(site) \
  do {                         \
  } while (0)
#define FGAC_FAULT_CHECK(site) (::fgac::Status::OK())
#endif

#endif  // FGAC_COMMON_FAULT_INJECTION_H_
