#ifndef FGAC_COMMON_STRINGS_H_
#define FGAC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace fgac {

/// ASCII-lowercases a copy of `s` (SQL identifiers are case-insensitive).
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Appends `s` to `out` escaped for use inside a JSON string literal (the
/// surrounding quotes are NOT added). `"` and `\` are backslash-escaped,
/// control characters become \n \t \r \b \f or \u00XX, and bytes that do
/// not form valid UTF-8 sequences are replaced by U+FFFD — audited
/// statement text is attacker-controlled, so the sink must emit valid JSON
/// for ANY input byte string.
void AppendJsonEscaped(std::string* out, std::string_view s);

/// `s` escaped per AppendJsonEscaped and wrapped in double quotes: a
/// complete JSON string literal.
std::string JsonQuote(std::string_view s);

}  // namespace fgac

#endif  // FGAC_COMMON_STRINGS_H_
