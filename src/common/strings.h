#ifndef FGAC_COMMON_STRINGS_H_
#define FGAC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace fgac {

/// ASCII-lowercases a copy of `s` (SQL identifiers are case-insensitive).
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace fgac

#endif  // FGAC_COMMON_STRINGS_H_
