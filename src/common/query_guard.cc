#include "common/query_guard.h"

#include <algorithm>
#include <string>

#include "common/value.h"

namespace fgac::common {

const char* DegradePolicyName(DegradePolicy policy) {
  switch (policy) {
    case DegradePolicy::kReject:
      return "Reject";
    case DegradePolicy::kTruman:
      return "Truman";
  }
  return "Unknown";
}

QueryGuard::QueryGuard(const QueryLimits& limits, const QueryGuard* parent)
    : limits_(limits),
      parent_(parent),
      cancel_(std::make_shared<std::atomic<bool>>(false)) {
  if (limits_.has_timeout()) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() + limits_.timeout;
  }
  // A child never outlives its parent's deadline.
  if (parent_ != nullptr && parent_->has_deadline_) {
    deadline_ = has_deadline_ ? std::min(deadline_, parent_->deadline_)
                              : parent_->deadline_;
    has_deadline_ = true;
  }
  // Children account against the same global budget (own release though:
  // a probe's build state dies with the probe, not with the query).
  if (parent_ != nullptr) tracker_ = parent_->tracker_;
}

QueryGuard::~QueryGuard() {
  if (tracker_ != nullptr) {
    uint64_t n = tracker_charged_.load(std::memory_order_relaxed);
    if (n > 0) tracker_->Release(n);
  }
}

bool QueryGuard::cancelled() const {
  if (cancel_->load(std::memory_order_acquire)) return true;
  if (external_cancel_ != nullptr &&
      external_cancel_->load(std::memory_order_acquire)) {
    return true;
  }
  return parent_ != nullptr && parent_->cancelled();
}

Status QueryGuard::Check() const {
  if (cancelled()) return Status::Cancelled("query cancelled");
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Status::Timeout("query deadline of " +
                           std::to_string(limits_.timeout.count()) +
                           "us exceeded");
  }
  return Status::OK();
}

Status QueryGuard::ChargeRows(uint64_t n) {
  uint64_t total = rows_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_rows > 0 && total > limits_.max_rows) {
    return Status::ResourceExhausted(
        "row budget of " + std::to_string(limits_.max_rows) +
        " rows exceeded");
  }
  return Check();
}

Status QueryGuard::ChargeBytes(uint64_t n) {
  if (tracker_ != nullptr) {
    FGAC_RETURN_NOT_OK(tracker_->Charge(n));
    tracker_charged_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t total = bytes_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_memory_bytes > 0 && total > limits_.max_memory_bytes) {
    return Status::ResourceExhausted(
        "memory budget of " + std::to_string(limits_.max_memory_bytes) +
        " bytes exceeded");
  }
  return Check();
}

uint64_t ApproxRowBytes(size_t arity) {
  return sizeof(Row) + static_cast<uint64_t>(arity) * sizeof(Value);
}

}  // namespace fgac::common
