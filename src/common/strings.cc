#include "common/strings.h"

#include <cctype>

namespace fgac {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 if the bytes
/// at i do not form one (overlong encodings, surrogates and values beyond
/// U+10FFFF are rejected so the output is strictly valid).
size_t Utf8SequenceLength(std::string_view s, size_t i) {
  const auto b = [&](size_t k) { return static_cast<unsigned char>(s[k]); };
  unsigned char c0 = b(i);
  if (c0 < 0x80) return 1;
  auto cont = [&](size_t k) {
    return k < s.size() && (b(k) & 0xC0) == 0x80;
  };
  if ((c0 & 0xE0) == 0xC0) {
    if (c0 < 0xC2) return 0;  // overlong
    return cont(i + 1) ? 2 : 0;
  }
  if ((c0 & 0xF0) == 0xE0) {
    if (!cont(i + 1) || !cont(i + 2)) return 0;
    unsigned char c1 = b(i + 1);
    if (c0 == 0xE0 && c1 < 0xA0) return 0;  // overlong
    if (c0 == 0xED && c1 >= 0xA0) return 0;  // surrogate
    return 3;
  }
  if ((c0 & 0xF8) == 0xF0) {
    if (!cont(i + 1) || !cont(i + 2) || !cont(i + 3)) return 0;
    unsigned char c1 = b(i + 1);
    if (c0 == 0xF0 && c1 < 0x90) return 0;  // overlong
    if (c0 == 0xF4 && c1 >= 0x90) return 0;  // > U+10FFFF
    if (c0 > 0xF4) return 0;
    return 4;
  }
  return 0;
}

}  // namespace

void AppendJsonEscaped(std::string* out, std::string_view s) {
  static const char kHex[] = "0123456789abcdef";
  // UTF-8 encoding of U+FFFD REPLACEMENT CHARACTER.
  static const char kReplacement[] = "\xEF\xBF\xBD";
  size_t i = 0;
  while (i < s.size()) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"') {
      out->append("\\\"");
      ++i;
    } else if (c == '\\') {
      out->append("\\\\");
      ++i;
    } else if (c == '\n') {
      out->append("\\n");
      ++i;
    } else if (c == '\t') {
      out->append("\\t");
      ++i;
    } else if (c == '\r') {
      out->append("\\r");
      ++i;
    } else if (c == '\b') {
      out->append("\\b");
      ++i;
    } else if (c == '\f') {
      out->append("\\f");
      ++i;
    } else if (c < 0x20) {
      out->append("\\u00");
      out->push_back(kHex[(c >> 4) & 0xF]);
      out->push_back(kHex[c & 0xF]);
      ++i;
    } else if (c < 0x80) {
      out->push_back(static_cast<char>(c));
      ++i;
    } else {
      size_t len = Utf8SequenceLength(s, i);
      if (len == 0) {
        out->append(kReplacement);
        ++i;  // consume exactly the one invalid byte and resynchronize
      } else {
        out->append(s.substr(i, len));
        i += len;
      }
    }
  }
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  AppendJsonEscaped(&out, s);
  out.push_back('"');
  return out;
}

}  // namespace fgac
