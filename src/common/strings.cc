#include "common/strings.h"

#include <cctype>

namespace fgac {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace fgac
