#ifndef FGAC_COMMON_METRICS_H_
#define FGAC_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace fgac::common {

/// Sliding-window layout shared by every windowed metric: time is sliced
/// into fixed 5-second epochs and each metric keeps the last kRing epochs
/// in a ring indexed by epoch % kRing. The exported windows (10s / 1m /
/// 5m) are sums over the most recent 2 / 12 / 60 epochs, so a "window"
/// value is exact at epoch granularity, not at sub-epoch granularity.
///
/// Ring slots are claimed lazily by writers: the first Record/Increment of
/// a new epoch CAS-claims the slot (epoch % kRing) and zeroes the stale
/// value it held. Writers racing the takeover may land an update in the
/// value being zeroed — such samples drop out of the *window* sums only;
/// the cumulative value is updated first and is always exact. Windowed
/// sums are therefore never larger than the cumulative value.
struct MetricWindow {
  static constexpr uint64_t kEpochSeconds = 5;
  static constexpr size_t kRing = 64;
  static constexpr size_t kCount = 3;
  /// Window widths in epochs: 10s, 1m, 5m.
  static constexpr std::array<uint64_t, kCount> kEpochs = {2, 12, 60};
  static constexpr std::array<const char*, kCount> kNames = {"10s", "1m",
                                                             "5m"};
  static constexpr uint64_t kNoEpoch = ~0ull;

  /// The current epoch number (steady clock; process-relative).
  static uint64_t EpochNow();
};

/// Monotonic counter. All mutators are relaxed atomic RMWs, so concurrent
/// increments from every morsel worker are lock-free and never tear; a
/// reader always sees some whole value that was actually written. Each
/// increment is additionally recorded into the current 5-second epoch of
/// the window ring (see MetricWindow for the slot-takeover semantics).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    IncrementAtEpoch(n, MetricWindow::EpochNow());
  }
  /// Deterministic-epoch seam for tests; the normal path derives the epoch
  /// from the steady clock.
  void IncrementAtEpoch(uint64_t n, uint64_t epoch);

  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  /// Sum over each window ending at the current epoch, one pass over the
  /// ring — so the 10s value is computed from a subset of the slots the 1m
  /// value uses, and windowed[10s] <= windowed[1m] <= windowed[5m] <=
  /// value() holds even against concurrent increments.
  std::array<uint64_t, MetricWindow::kCount> Windowed() const {
    return WindowedAtEpoch(MetricWindow::EpochNow());
  }
  std::array<uint64_t, MetricWindow::kCount> WindowedAtEpoch(
      uint64_t epoch) const;

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{MetricWindow::kNoEpoch};
    std::atomic<uint64_t> v{0};
  };

  std::atomic<uint64_t> v_{0};
  std::array<Slot, MetricWindow::kRing> ring_{};
};

/// Point-in-time signed value (queue depths, cache sizes).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is below it (high-water marks).
  void SetMax(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Power-of-two-bucketed histogram of non-negative samples (latencies in
/// microseconds, row counts). Bucket 0 counts zero samples; bucket i
/// (1..63) counts samples in [2^(i-1), 2^i). Every slot is an independent
/// atomic, so Record() is wait-free and snapshots read consistent whole
/// values per slot (count/sum/buckets are not mutually atomic — a snapshot
/// taken mid-update may be one sample ahead in one slot, which is fine for
/// monitoring and exact once writers quiesce). Samples are additionally
/// recorded into the window ring, so windowed p50/p95/p99 over the last
/// 10s / 1m / 5m are available next to the cumulative percentiles.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  /// Cumulative-plus-windowed view of one window's worth of samples.
  struct WindowValue {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };

  void Record(uint64_t v) { RecordAtEpoch(v, MetricWindow::EpochNow()); }
  /// Deterministic-epoch seam for tests.
  void RecordAtEpoch(uint64_t v, uint64_t epoch);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Estimate of the p-th percentile sample (p in [0,100]); 0 when empty.
  /// The target rank's bucket is located exactly, then the value is
  /// linearly interpolated within the bucket's [2^(i-1), 2^i) range under
  /// a uniform-samples assumption — so exported p50/p95/p99 read as real
  /// latencies, not power-of-two bucket edges.
  uint64_t ApproxPercentile(double p) const;

  /// Merged-bucket percentiles per window, one pass over the ring.
  std::array<WindowValue, MetricWindow::kCount> Windowed() const {
    return WindowedAtEpoch(MetricWindow::EpochNow());
  }
  std::array<WindowValue, MetricWindow::kCount> WindowedAtEpoch(
      uint64_t epoch) const;

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{MetricWindow::kNoEpoch};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
  };

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::array<Slot, MetricWindow::kRing> ring_{};
};

/// One consistent-enough copy of every registered metric, decoupled from
/// the live registry (safe to serialize, diff, or ship while writers keep
/// updating).
struct MetricsSnapshot {
  struct HistogramValue {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    std::array<uint64_t, Histogram::kBuckets> buckets{};
    std::array<Histogram::WindowValue, MetricWindow::kCount> windows{};
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, std::array<uint64_t, MetricWindow::kCount>>
      counter_windows;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramValue> histograms;

  std::string ToJson() const;

  /// Prometheus text exposition (text/plain; version=0.0.4). Dotted metric
  /// names map to a stable flat namespace: "exec.run_us" becomes
  /// fgac_exec_run_us; counters gain the conventional _total suffix;
  /// histograms export as summaries (quantile-labeled lines plus _sum and
  /// _count); windowed values carry a window="10s|1m|5m" label on
  /// *_windowed / *_rate series.
  std::string ToPrometheus() const;
};

/// Process-light metrics registry: named counters / gauges / histograms,
/// created on first use and owned for the registry's lifetime (handles are
/// stable pointers — hot paths resolve a metric once and then touch only
/// its atomics). The name table is sharded by name hash so concurrent
/// first-use registration from parallel workers contends on 1/kShards of
/// a mutex, and steady-state updates take no lock at all.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Copies every metric's current value. Callable concurrently with
  /// updates from any number of threads.
  MetricsSnapshot Snapshot() const;

  std::string ToJson() const { return Snapshot().ToJson(); }
  std::string ToPrometheus() const { return Snapshot().ToPrometheus(); }

 private:
  static constexpr size_t kShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Shard& ShardFor(std::string_view name);

  std::array<Shard, kShards> shards_;
};

}  // namespace fgac::common

#endif  // FGAC_COMMON_METRICS_H_
