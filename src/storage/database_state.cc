#include "storage/database_state.h"

namespace fgac::storage {

Status DatabaseState::CreateTable(const std::string& name, size_t num_columns) {
  if (HasTable(name)) {
    return Status::CatalogError("table data for '" + name + "' already exists");
  }
  tables_.emplace(name, TableData(num_columns));
  return Status::OK();
}

Status DatabaseState::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::CatalogError("table data for '" + name + "' does not exist");
  }
  return Status::OK();
}

bool DatabaseState::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const TableData* DatabaseState::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

TableData* DatabaseState::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

DatabaseState DatabaseState::Clone() const {
  DatabaseState copy;
  for (const auto& [name, data] : tables_) {
    TableData t(data.num_columns());
    t.mutable_rows() = data.rows();
    copy.tables_.emplace(name, std::move(t));
  }
  return copy;
}

size_t DatabaseState::TotalRows() const {
  size_t n = 0;
  for (const auto& [name, data] : tables_) n += data.num_rows();
  return n;
}

}  // namespace fgac::storage
