#include "storage/database_state.h"

namespace fgac::storage {

void DatabaseState::SetMemoryTracker(common::MemoryTracker* tracker) {
  tracker_ = tracker;
  for (auto& [name, data] : tables_) data.set_memory_tracker(tracker);
}

Status DatabaseState::CreateTable(const std::string& name, size_t num_columns) {
  if (HasTable(name)) {
    return Status::CatalogError("table data for '" + name + "' already exists");
  }
  auto it = tables_.emplace(name, TableData(num_columns)).first;
  it->second.set_memory_tracker(tracker_);
  ++structural_version_;
  return Status::OK();
}

Status DatabaseState::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::CatalogError("table data for '" + name + "' does not exist");
  }
  // Fold the dropped table's mutation count into the structural component
  // so DataVersion never regresses to an earlier value.
  structural_version_ += it->second.version() + 1;
  tables_.erase(it);
  return Status::OK();
}

bool DatabaseState::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const TableData* DatabaseState::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

TableData* DatabaseState::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

DatabaseState DatabaseState::Clone() const {
  DatabaseState copy;
  for (const auto& [name, data] : tables_) {
    TableData t(data.num_columns());
    t.ReplaceAllRows(data.rows());
    copy.tables_.emplace(name, std::move(t));
  }
  return copy;
}

size_t DatabaseState::TotalRows() const {
  size_t n = 0;
  for (const auto& [name, data] : tables_) n += data.num_rows();
  return n;
}

uint64_t DatabaseState::DataVersion() const {
  uint64_t v = structural_version_;
  for (const auto& [name, data] : tables_) v += data.version();
  return v;
}

}  // namespace fgac::storage
