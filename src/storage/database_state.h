#ifndef FGAC_STORAGE_DATABASE_STATE_H_
#define FGAC_STORAGE_DATABASE_STATE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "storage/table_data.h"

namespace fgac::storage {

/// The data of every base table — one "database state" in the paper's
/// terminology (Definitions 4.1–4.3). Cloneable so tests can construct
/// PA-equivalent states by mutating tuples invisible to the authorization
/// views and re-running queries.
class DatabaseState {
 public:
  DatabaseState() = default;
  DatabaseState(const DatabaseState&) = delete;
  DatabaseState& operator=(const DatabaseState&) = delete;
  DatabaseState(DatabaseState&&) = default;
  DatabaseState& operator=(DatabaseState&&) = default;

  /// Registers every table's columnar-snapshot rebuild with the global
  /// memory account (existing tables and those created later). Pass
  /// nullptr to detach. Not thread-safe against concurrent scans.
  void SetMemoryTracker(common::MemoryTracker* tracker);

  Status CreateTable(const std::string& name, size_t num_columns);
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  const TableData* GetTable(const std::string& name) const;
  TableData* GetMutableTable(const std::string& name);

  /// Deep copy (rows are value types).
  DatabaseState Clone() const;

  /// Total number of rows across all tables (diagnostics).
  size_t TotalRows() const;

  /// Monotonic version of the stored data, advanced by EVERY mutation path:
  /// per-table mutation counters plus a structural component for table
  /// creation/removal. Direct TableData writers (bench seeding, tests)
  /// therefore invalidate ValidityCache conditional verdicts exactly like
  /// DML routed through Database — there is no bypass.
  uint64_t DataVersion() const;

 private:
  std::map<std::string, TableData> tables_;
  common::MemoryTracker* tracker_ = nullptr;
  /// Structural changes; absorbs the version of dropped tables so the
  /// aggregate never repeats a previously observed value.
  uint64_t structural_version_ = 0;
};

}  // namespace fgac::storage

#endif  // FGAC_STORAGE_DATABASE_STATE_H_
