#include "storage/relation.h"

#include <algorithm>
#include <unordered_map>

#include "exec/chunk.h"

namespace fgac::storage {

void Relation::AppendChunk(const exec::DataChunk& chunk) {
  rows_.reserve(rows_.size() + chunk.size());
  for (size_t i = 0; i < chunk.size(); ++i) {
    rows_.push_back(chunk.GetRow(i));
  }
}

namespace {

bool RowLess(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

}  // namespace

bool Relation::MultisetEquals(const Relation& other) const {
  if (rows_.size() != other.rows_.size()) return false;
  std::unordered_map<Row, int64_t, RowHash, RowEq> counts;
  counts.reserve(rows_.size());
  for (const Row& r : rows_) ++counts[r];
  for (const Row& r : other.rows_) {
    auto it = counts.find(r);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

std::vector<Row> Relation::SortedRows() const {
  std::vector<Row> sorted = rows_;
  std::sort(sorted.begin(), sorted.end(), RowLess);
  return sorted;
}

std::string Relation::ToString(size_t max_rows) const {
  // Compute column widths.
  std::vector<size_t> widths(column_names_.size());
  for (size_t i = 0; i < column_names_.size(); ++i) {
    widths[i] = column_names_[i].size();
  }
  std::vector<std::vector<std::string>> cells;
  size_t shown = std::min(rows_.size(), max_rows);
  cells.reserve(shown);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells;
    for (size_t i = 0; i < rows_[r].size(); ++i) {
      std::string cell = rows_[r][i].ToString();
      if (i < widths.size()) widths[i] = std::max(widths[i], cell.size());
      row_cells.push_back(std::move(cell));
    }
    cells.push_back(std::move(row_cells));
  }

  auto pad = [](const std::string& s, size_t w) {
    std::string out = s;
    out.resize(std::max(w, s.size()), ' ');
    return out;
  };

  std::string out;
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (i > 0) out += " | ";
    out += pad(column_names_[i], widths[i]);
  }
  out += "\n";
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (i > 0) out += "-+-";
    out += std::string(widths[i], '-');
  }
  out += "\n";
  for (const auto& row_cells : cells) {
    for (size_t i = 0; i < row_cells.size(); ++i) {
      if (i > 0) out += " | ";
      out += pad(row_cells[i], i < widths.size() ? widths[i] : 0);
    }
    out += "\n";
  }
  if (rows_.size() > shown) {
    out += "... (";
    out += std::to_string(rows_.size() - shown);
    out += " more rows)\n";
  }
  out += "(";
  out += std::to_string(rows_.size());
  out += " rows)\n";
  return out;
}

}  // namespace fgac::storage
