#include "storage/table_data.h"

#include <algorithm>

namespace fgac::storage {

void TableData::InsertRows(std::vector<Row> rows) {
  columns_dirty_ = true;
  if (rows_.empty()) {
    rows_ = std::move(rows);
    return;
  }
  rows_.reserve(rows_.size() + rows.size());
  for (Row& r : rows) rows_.push_back(std::move(r));
}

void TableData::RebuildColumns() const {
  columns_.assign(num_columns_, exec::ColumnVector());
  for (exec::ColumnVector& c : columns_) c.Reserve(rows_.size());
  for (const Row& r : rows_) {
    for (size_t c = 0; c < num_columns_; ++c) columns_[c].Append(r[c]);
  }
  columns_dirty_ = false;
}

size_t TableData::ScanChunk(size_t start, size_t max_rows,
                            exec::DataChunk* out) const {
  if (columns_dirty_) RebuildColumns();
  out->Reset(num_columns_);
  if (start >= rows_.size()) return 0;
  size_t n = std::min(max_rows, rows_.size() - start);
  for (size_t c = 0; c < num_columns_; ++c) {
    out->column(c).AppendRange(columns_[c], start, n);
  }
  out->SetCardinality(n);
  return n;
}

void TableData::EraseIndices(const std::vector<size_t>& ascending_indices) {
  if (ascending_indices.empty()) return;
  columns_dirty_ = true;
  std::vector<Row> kept;
  kept.reserve(rows_.size() - ascending_indices.size());
  size_t next = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (next < ascending_indices.size() && ascending_indices[next] == i) {
      ++next;
      continue;
    }
    kept.push_back(std::move(rows_[i]));
  }
  rows_ = std::move(kept);
}

}  // namespace fgac::storage
