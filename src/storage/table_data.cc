#include "storage/table_data.h"

#include <algorithm>

#include "common/fault_injection.h"

namespace fgac::storage {

TableData::~TableData() {
  if (tracker_ != nullptr && snapshot_charged_ > 0) {
    tracker_->Release(snapshot_charged_);
  }
}

void TableData::MoveFrom(TableData&& other) noexcept {
  num_columns_ = other.num_columns_;
  rows_ = std::move(other.rows_);
  version_ = other.version_;
  columns_ = std::move(other.columns_);
  columns_dirty_.store(other.columns_dirty_.load(std::memory_order_acquire),
                       std::memory_order_release);
  tracker_ = other.tracker_;
  snapshot_charged_ = other.snapshot_charged_;
  // The moved-from table no longer owns the snapshot's charge.
  other.tracker_ = nullptr;
  other.snapshot_charged_ = 0;
}

void TableData::InsertRows(std::vector<Row> rows) {
  Invalidate();
  if (rows_.empty()) {
    rows_ = std::move(rows);
    return;
  }
  rows_.reserve(rows_.size() + rows.size());
  for (Row& r : rows) rows_.push_back(std::move(r));
}

void TableData::UpdateRow(size_t i, Row row) {
  rows_[i] = std::move(row);
  Invalidate();
}

void TableData::ReplaceAllRows(std::vector<Row> rows) {
  rows_ = std::move(rows);
  Invalidate();
}

Status TableData::EnsureColumnsBuilt() const {
  if (!columns_dirty_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(columns_mutex_);
  if (!columns_dirty_.load(std::memory_order_relaxed)) return Status::OK();
  FGAC_FAULT_POINT("storage.rebuild");
  if (tracker_ != nullptr) {
    // Swap the snapshot's global charge before materializing: release the
    // stale snapshot's footprint, charge the new one. Denial fails the
    // scan and keeps the snapshot dirty — the rebuild retries later.
    uint64_t bytes =
        rows_.size() * num_columns_ * static_cast<uint64_t>(sizeof(Value));
    if (snapshot_charged_ > 0) tracker_->Release(snapshot_charged_);
    snapshot_charged_ = 0;
    FGAC_RETURN_NOT_OK(tracker_->Charge(bytes));
    snapshot_charged_ = bytes;
  }
  columns_.assign(num_columns_, exec::ColumnVector());
  for (exec::ColumnVector& c : columns_) c.Reserve(rows_.size());
  for (const Row& r : rows_) {
    for (size_t c = 0; c < num_columns_; ++c) {
      // A malformed (narrow) row degrades to NULL padding rather than
      // reading past its end.
      if (c < r.size()) {
        columns_[c].Append(r[c]);
      } else {
        columns_[c].AppendNull();
      }
    }
  }
  columns_dirty_.store(false, std::memory_order_release);
  return Status::OK();
}

Result<size_t> TableData::ScanChunk(size_t start, size_t max_rows,
                                    exec::DataChunk* out) const {
  FGAC_RETURN_NOT_OK(EnsureColumnsBuilt());
  out->Reset(num_columns_);
  if (start >= rows_.size()) return 0;
  size_t n = std::min(max_rows, rows_.size() - start);
  for (size_t c = 0; c < num_columns_; ++c) {
    out->column(c).AppendRange(columns_[c], start, n);
  }
  out->SetCardinality(n);
  return n;
}

void TableData::EraseIndices(const std::vector<size_t>& ascending_indices) {
  if (ascending_indices.empty()) return;
  Invalidate();
  std::vector<Row> kept;
  kept.reserve(rows_.size() - ascending_indices.size());
  size_t next = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (next < ascending_indices.size() && ascending_indices[next] == i) {
      ++next;
      continue;
    }
    kept.push_back(std::move(rows_[i]));
  }
  rows_ = std::move(kept);
}

}  // namespace fgac::storage
