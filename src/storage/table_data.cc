#include "storage/table_data.h"

namespace fgac::storage {

void TableData::EraseIndices(const std::vector<size_t>& ascending_indices) {
  if (ascending_indices.empty()) return;
  std::vector<Row> kept;
  kept.reserve(rows_.size() - ascending_indices.size());
  size_t next = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (next < ascending_indices.size() && ascending_indices[next] == i) {
      ++next;
      continue;
    }
    kept.push_back(std::move(rows_[i]));
  }
  rows_ = std::move(kept);
}

}  // namespace fgac::storage
