#ifndef FGAC_STORAGE_RELATION_H_
#define FGAC_STORAGE_RELATION_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace fgac::exec {
class DataChunk;
}  // namespace fgac::exec

namespace fgac::storage {

/// A materialized query result or table snapshot: named columns plus a
/// multiset of rows (SQL bag semantics — duplicates are significant, order
/// is not, except when produced by ORDER BY).
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<std::string> column_names)
      : column_names_(std::move(column_names)) {}

  const std::vector<std::string>& column_names() const { return column_names_; }
  size_t num_columns() const { return column_names_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }
  /// Bulk append of one execution batch (rows materialize column-by-column).
  void AppendChunk(const exec::DataChunk& chunk);
  void Clear() { rows_.clear(); }

  /// Multiset equality: same row bag regardless of order. Column names are
  /// NOT compared (SQL result equivalence is positional).
  bool MultisetEquals(const Relation& other) const;

  /// Rows sorted by the Value total order (for deterministic display/tests).
  std::vector<Row> SortedRows() const;

  /// Tabular rendering for examples and debugging.
  std::string ToString(size_t max_rows = 50) const;

 private:
  std::vector<std::string> column_names_;
  std::vector<Row> rows_;
};

}  // namespace fgac::storage

#endif  // FGAC_STORAGE_RELATION_H_
