#ifndef FGAC_STORAGE_TABLE_DATA_H_
#define FGAC_STORAGE_TABLE_DATA_H_

#include <cstddef>
#include <vector>

#include "common/value.h"
#include "exec/chunk.h"

namespace fgac::storage {

/// Row storage for one base table. Rows are stored in insertion order;
/// deletion compacts. The schema lives in the catalog; TableData only
/// validates row width.
///
/// Reads go through ScanChunk, which serves batches from a lazily-built
/// columnar snapshot of the rows; any mutation invalidates the snapshot and
/// the next scan rebuilds it in one pass. Read-heavy workloads therefore
/// scan typed column arrays instead of re-pivoting row-major Values on
/// every query.
class TableData {
 public:
  TableData() = default;
  explicit TableData(size_t num_columns) : num_columns_(num_columns) {}

  size_t num_columns() const { return num_columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() {
    columns_dirty_ = true;  // caller may mutate through the reference
    return rows_;
  }
  size_t num_rows() const { return rows_.size(); }

  void Insert(Row row) {
    rows_.push_back(std::move(row));
    columns_dirty_ = true;
  }

  /// Bulk append with a single reservation (INSERT ... SELECT / seed data).
  void InsertRows(std::vector<Row> rows);

  /// Chunked scan access path: reshapes `out` to this table's width and
  /// fills it with up to max_rows rows starting at row index `start`.
  /// Returns the number of rows appended (0 past the end).
  size_t ScanChunk(size_t start, size_t max_rows, exec::DataChunk* out) const;

  /// Removes all rows at the given (ascending, deduplicated) indices.
  void EraseIndices(const std::vector<size_t>& ascending_indices);

 private:
  void RebuildColumns() const;

  size_t num_columns_ = 0;
  std::vector<Row> rows_;
  // Columnar snapshot of rows_, rebuilt on first scan after a mutation.
  mutable std::vector<exec::ColumnVector> columns_;
  mutable bool columns_dirty_ = true;
};

}  // namespace fgac::storage

#endif  // FGAC_STORAGE_TABLE_DATA_H_
