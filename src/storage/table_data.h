#ifndef FGAC_STORAGE_TABLE_DATA_H_
#define FGAC_STORAGE_TABLE_DATA_H_

#include <cstddef>
#include <vector>

#include "common/value.h"

namespace fgac::storage {

/// Row storage for one base table. Rows are stored in insertion order;
/// deletion compacts. The schema lives in the catalog; TableData only
/// validates row width.
class TableData {
 public:
  TableData() = default;
  explicit TableData(size_t num_columns) : num_columns_(num_columns) {}

  size_t num_columns() const { return num_columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  void Insert(Row row) { rows_.push_back(std::move(row)); }

  /// Removes all rows at the given (ascending, deduplicated) indices.
  void EraseIndices(const std::vector<size_t>& ascending_indices);

 private:
  size_t num_columns_ = 0;
  std::vector<Row> rows_;
};

}  // namespace fgac::storage

#endif  // FGAC_STORAGE_TABLE_DATA_H_
