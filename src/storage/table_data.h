#ifndef FGAC_STORAGE_TABLE_DATA_H_
#define FGAC_STORAGE_TABLE_DATA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/memory_tracker.h"
#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/chunk.h"

namespace fgac::storage {

/// Row storage for one base table. Rows are stored in insertion order;
/// deletion compacts. The schema lives in the catalog; TableData only
/// validates row width.
///
/// Reads go through ScanChunk, which serves batches from a lazily-built
/// columnar snapshot of the rows; any mutation invalidates the snapshot and
/// the next scan rebuilds it in one pass. Read-heavy workloads therefore
/// scan typed column arrays instead of re-pivoting row-major Values on
/// every query.
///
/// Concurrency contract: any number of threads may call the const read API
/// (rows(), ScanChunk, num_rows) concurrently — the snapshot (re)build is an
/// explicit synchronized step (EnsureColumnsBuilt, double-checked under
/// columns_mutex_). Mutations are NOT thread-safe against readers or each
/// other; callers must quiesce scans before writing, exactly as with the
/// operator-tree borrow contract in BuildPhysicalPlan.
///
/// Every mutation goes through a version-bumping member function — there is
/// deliberately no mutable_rows() escape hatch. A reference leaked from such
/// an accessor could be written through *after* the next scan rebuilt the
/// snapshot (leaving the snapshot silently stale), and writes through it
/// would bypass the version counter that ValidityCache conditional verdicts
/// depend on.
class TableData {
 public:
  TableData() = default;
  explicit TableData(size_t num_columns) : num_columns_(num_columns) {}

  // Movable (for container use during setup) but not copyable; moves are
  // not thread-safe and must not race scans.
  TableData(TableData&& other) noexcept { MoveFrom(std::move(other)); }
  TableData& operator=(TableData&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }
  TableData(const TableData&) = delete;
  TableData& operator=(const TableData&) = delete;
  ~TableData();

  /// Accounts the columnar snapshot against the process-wide budget: each
  /// rebuild charges the snapshot's approximate footprint (releasing the
  /// previous snapshot's) and a rebuild the tracker denies fails the scan
  /// with kResourceExhausted, leaving the snapshot dirty for retry once
  /// pressure drains. Attach before concurrent scans start.
  void set_memory_tracker(common::MemoryTracker* tracker) {
    tracker_ = tracker;
  }

  size_t num_columns() const { return num_columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Counts mutations (inserts, updates, deletes, wholesale replacement).
  /// ValidityCache keys conditional verdicts on the aggregate of these
  /// counters, so every write path — including bench/test seeding that
  /// bypasses Database — advances it.
  uint64_t version() const { return version_; }

  void Insert(Row row) {
    rows_.push_back(std::move(row));
    Invalidate();
  }

  /// Bulk append with a single reservation (INSERT ... SELECT / seed data).
  void InsertRows(std::vector<Row> rows);

  /// Replaces row `i` wholesale (UPDATE's write phase).
  void UpdateRow(size_t i, Row row);

  /// Replaces the entire contents (state cloning, view materialization).
  void ReplaceAllRows(std::vector<Row> rows);

  /// Chunked scan access path: reshapes `out` to this table's width and
  /// fills it with up to max_rows rows starting at row index `start`.
  /// Returns the number of rows appended (0 past the end). Safe to call
  /// from multiple threads concurrently. Fails only when the lazy columnar
  /// rebuild fails (today: fault injection at "storage.rebuild").
  Result<size_t> ScanChunk(size_t start, size_t max_rows,
                           exec::DataChunk* out) const;

  /// Removes all rows at the given (ascending, deduplicated) indices.
  void EraseIndices(const std::vector<size_t>& ascending_indices);

 private:
  /// Builds the columnar snapshot if (and only if) it is stale. Double
  /// checked: the atomic dirty flag is read outside the mutex, re-read
  /// under it, so concurrent scanners serialize only while a rebuild is
  /// actually pending. On failure the snapshot stays dirty, so a later
  /// scan retries the rebuild.
  Status EnsureColumnsBuilt() const;
  void Invalidate() {
    ++version_;
    columns_dirty_.store(true, std::memory_order_release);
  }
  void MoveFrom(TableData&& other) noexcept;

  size_t num_columns_ = 0;
  std::vector<Row> rows_;
  uint64_t version_ = 0;
  // Columnar snapshot of rows_, rebuilt on first scan after a mutation.
  mutable std::mutex columns_mutex_;
  mutable std::vector<exec::ColumnVector> columns_;
  mutable std::atomic<bool> columns_dirty_{true};
  common::MemoryTracker* tracker_ = nullptr;
  /// Bytes charged to tracker_ for the live snapshot (guarded by
  /// columns_mutex_ like the snapshot itself).
  mutable uint64_t snapshot_charged_ = 0;
};

}  // namespace fgac::storage

#endif  // FGAC_STORAGE_TABLE_DATA_H_
