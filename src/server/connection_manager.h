#ifndef FGAC_SERVER_CONNECTION_MANAGER_H_
#define FGAC_SERVER_CONNECTION_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "core/session_context.h"
#include "core/statement_cache.h"

namespace fgac::server {

class ConnectionManager;

/// One client connection to the database: a SessionContext (principal,
/// enforcement mode, session parameters, cancel token) plus the session's
/// prepared-statement registry. Statements flow through Execute(), which
/// recognizes PREPARE / EXECUTE / DEALLOCATE and routes everything else to
/// Database::Execute verbatim.
///
/// Thread model: Execute() may be called from any thread; concurrent
/// statements on one session are allowed (each runs independently).
/// Interrupt() sets the session's cancel token, unwinding every in-flight
/// statement with kCancelled; the token is replaced lazily so statements
/// issued after the interrupt run normally. Close() marks the session
/// closed (new statements fail with kCancelled), cancels in-flight work,
/// and blocks until it has drained.
///
/// Prepared statements are per-session: EXECUTE of a name prepared by a
/// different session is rejected — the registry is the session's, not the
/// server's. The registry holds shared_ptrs, so DEALLOCATE during an
/// in-flight EXECUTE of the same name just drops the registry entry; the
/// execution keeps its reference and drains cleanly.
class Session {
 public:
  ~Session();

  const std::string& id() const { return id_; }

  /// The session's context. Mutations (SetParam, set_mode, limits) are the
  /// caller's responsibility to sequence against in-flight statements.
  core::SessionContext& context() { return ctx_; }
  const core::SessionContext& context() const { return ctx_; }

  /// Parses and runs one statement. PREPARE / EXECUTE / DEALLOCATE are
  /// handled here against the session registry; everything else goes to
  /// the database unchanged.
  Result<core::ExecResult> Execute(std::string_view sql);

  /// Cancels every statement currently executing on this session.
  void Interrupt();

  /// Marks the session closed, cancels in-flight statements, and waits for
  /// them to drain. Idempotent. Prepared statements are released.
  void Close();

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Statements currently executing (for tests / monitoring).
  uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  /// Names of live prepared statements, sorted.
  std::vector<std::string> PreparedNames() const;

 private:
  friend class ConnectionManager;
  Session(core::Database& db, std::string id, std::string user,
          core::EnforcementMode mode);

  /// Claims an execution slot and the cancel token for one statement;
  /// fails if the session is closed.
  Result<std::shared_ptr<std::atomic<bool>>> BeginStatement();
  void EndStatement();

  Result<core::ExecResult> RunPrepare(const sql::PrepareStmt& stmt,
                                      const core::SessionContext& ctx);
  Result<core::ExecResult> RunExecute(const sql::ExecuteStmt& stmt,
                                      const core::SessionContext& ctx);
  Result<core::ExecResult> RunDeallocate(const sql::DeallocateStmt& stmt,
                                         const core::SessionContext& ctx);

  core::Database& db_;
  const std::string id_;
  core::SessionContext ctx_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  std::map<std::string, std::shared_ptr<core::PreparedStatement>> prepared_;
  /// Token observed by in-flight statements. Replaced (not cleared) after
  /// an interrupt so the flag flip only reaches statements that were
  /// running when Interrupt() was called.
  std::shared_ptr<std::atomic<bool>> cancel_;
  bool interrupted_ = false;

  std::atomic<uint64_t> in_flight_{0};
  std::atomic<bool> closed_{false};
};

/// Owns the server's sessions: open/lookup/interrupt/close by connection
/// id. Modeled on an embedded database's connection manager — sessions are
/// handed out as shared_ptrs so a closing manager never invalidates a
/// handle a client thread still holds.
class ConnectionManager {
 public:
  explicit ConnectionManager(core::Database& db) : db_(db) {}
  ~ConnectionManager() { CloseAll(); }

  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  /// Opens a session for `user` under `mode`; the returned session is
  /// registered under its id() ("conn-1", "conn-2", ...).
  std::shared_ptr<Session> Open(
      const std::string& user,
      core::EnforcementMode mode = core::EnforcementMode::kNone);

  /// nullptr if unknown or already closed.
  std::shared_ptr<Session> Get(const std::string& id) const;

  /// Cancels in-flight statements on the session; false if unknown.
  bool Interrupt(const std::string& id);

  /// Closes and unregisters the session; blocks until its in-flight
  /// statements drain. False if unknown.
  bool Close(const std::string& id);

  /// Closes every session (drains each).
  void CloseAll();

  size_t active_sessions() const;
  uint64_t sessions_opened() const {
    return opened_.load(std::memory_order_relaxed);
  }
  uint64_t sessions_closed() const {
    return closed_.load(std::memory_order_relaxed);
  }
  uint64_t interrupts() const {
    return interrupts_.load(std::memory_order_relaxed);
  }

 private:
  core::Database& db_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> opened_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> interrupts_{0};
};

}  // namespace fgac::server

#endif  // FGAC_SERVER_CONNECTION_MANAGER_H_
