#include "server/connection_manager.h"

#include <utility>

#include "sql/parser.h"
#include "sql/printer.h"

namespace fgac::server {

using core::ExecResult;
using core::SessionContext;

Session::Session(core::Database& db, std::string id, std::string user,
                 core::EnforcementMode mode)
    : db_(db), id_(std::move(id)), ctx_(std::move(user)) {
  ctx_.set_session_id(id_);
  ctx_.set_mode(mode);
  cancel_ = std::make_shared<std::atomic<bool>>(false);
  // Explicit registration: the session shows in fgac_sessions for its
  // whole lifetime, idle included, until Close() deregisters it.
  db_.activity().OpenSession(id_, ctx_.user());
}

Session::~Session() { Close(); }

Result<std::shared_ptr<std::atomic<bool>>> Session::BeginStatement() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Cancelled("session " + id_ + " is closed");
  }
  if (interrupted_) {
    // The previous Interrupt() tripped the current token; statements that
    // were in flight keep the tripped one, new statements get a clean one.
    cancel_ = std::make_shared<std::atomic<bool>>(false);
    interrupted_ = false;
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  return cancel_;
}

void Session::EndStatement() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    drained_.notify_all();
  }
}

Result<ExecResult> Session::Execute(std::string_view sql) {
  FGAC_ASSIGN_OR_RETURN(std::shared_ptr<std::atomic<bool>> token,
                        BeginStatement());
  struct SlotGuard {
    Session* s;
    ~SlotGuard() { s->EndStatement(); }
  } slot{this};

  // Run on a copy of the session context so a concurrent statement (or a
  // caller mutating context() between statements) never races with this
  // one, and so the cancel token is pinned to the statement.
  SessionContext ctx;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ctx = ctx_;
  }
  ctx.set_cancel_token(token);

  Result<sql::StmtPtr> parsed = sql::Parser::ParseStatement(sql);
  if (!parsed.ok()) {
    db_.AuditSessionStatement(ctx, std::string(sql), parsed.status());
    return parsed.status();
  }
  const sql::Stmt& stmt = *parsed.value();
  switch (stmt.kind()) {
    case sql::StmtKind::kPrepare:
      return RunPrepare(static_cast<const sql::PrepareStmt&>(stmt), ctx);
    case sql::StmtKind::kExecute:
      return RunExecute(static_cast<const sql::ExecuteStmt&>(stmt), ctx);
    case sql::StmtKind::kDeallocate:
      return RunDeallocate(static_cast<const sql::DeallocateStmt&>(stmt),
                           ctx);
    case sql::StmtKind::kExplain: {
      const auto& ex = static_cast<const sql::ExplainStmt&>(stmt);
      if (ex.execute == nullptr) return db_.Execute(sql, ctx);
      // EXPLAIN [ANALYZE] EXECUTE resolves against THIS session's registry
      // (same scoping as EXECUTE itself).
      std::shared_ptr<core::PreparedStatement> prep;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = prepared_.find(ex.execute->name);
        if (it != prepared_.end()) prep = it->second;
      }
      if (prep == nullptr) {
        Status st = Status::InvalidArgument("unknown prepared statement '" +
                                            ex.execute->name + "'");
        db_.AuditSessionStatement(ctx, sql::StmtToSql(stmt), st);
        return st;
      }
      return db_.ExplainPrepared(ex, prep, ctx);
    }
    default:
      return db_.Execute(sql, ctx);
  }
}

Result<ExecResult> Session::RunPrepare(const sql::PrepareStmt& stmt,
                                       const SessionContext& ctx) {
  FGAC_ASSIGN_OR_RETURN(std::shared_ptr<core::PreparedStatement> prep,
                        db_.Prepare(stmt, ctx));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-PREPARE of an existing name replaces it (the old statement stays
    // alive for any EXECUTE already running against it).
    prepared_[stmt.name] = std::move(prep);
  }
  ExecResult out;
  out.message = "prepared " + stmt.name;
  return out;
}

Result<ExecResult> Session::RunExecute(const sql::ExecuteStmt& stmt,
                                       const SessionContext& ctx) {
  std::shared_ptr<core::PreparedStatement> prep;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = prepared_.find(stmt.name);
    if (it != prepared_.end()) prep = it->second;
  }
  if (prep == nullptr) {
    // Registries are per-session: a name prepared elsewhere is unknown
    // here by design.
    Status st = Status::InvalidArgument("unknown prepared statement '" +
                                        stmt.name + "'");
    db_.AuditSessionStatement(ctx, sql::StmtToSql(stmt), st);
    return st;
  }
  return db_.ExecutePrepared(prep, stmt.args, ctx);
}

Result<ExecResult> Session::RunDeallocate(const sql::DeallocateStmt& stmt,
                                          const SessionContext& ctx) {
  Status st = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stmt.name.empty()) {
      prepared_.clear();
    } else if (prepared_.erase(stmt.name) == 0) {
      st = Status::InvalidArgument("unknown prepared statement '" +
                                   stmt.name + "'");
    }
  }
  db_.AuditSessionStatement(ctx, sql::StmtToSql(stmt), st);
  if (!st.ok()) return st;
  ExecResult out;
  out.message = stmt.name.empty() ? "deallocated all prepared statements"
                                  : "deallocated " + stmt.name;
  return out;
}

void Session::Interrupt() {
  std::lock_guard<std::mutex> lock(mu_);
  cancel_->store(true, std::memory_order_release);
  interrupted_ = true;
}

void Session::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!closed_.exchange(true, std::memory_order_acq_rel)) {
    cancel_->store(true, std::memory_order_release);
  }
  drained_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
  prepared_.clear();
  // After the drain: every statement has left the registry, so the session
  // record disappears cleanly (ids are never reused).
  db_.activity().CloseSession(id_);
}

std::vector<std::string> Session::PreparedNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(prepared_.size());
  for (const auto& [name, prep] : prepared_) names.push_back(name);
  return names;
}

std::shared_ptr<Session> ConnectionManager::Open(const std::string& user,
                                                 core::EnforcementMode mode) {
  uint64_t n = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string id = "conn-" + std::to_string(n);
  std::shared_ptr<Session> session(new Session(db_, id, user, mode));
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_[id] = session;
  }
  opened_.fetch_add(1, std::memory_order_relaxed);
  return session;
}

std::shared_ptr<Session> ConnectionManager::Get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool ConnectionManager::Interrupt(const std::string& id) {
  std::shared_ptr<Session> session = Get(id);
  if (session == nullptr) return false;
  session->Interrupt();
  interrupts_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ConnectionManager::Close(const std::string& id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  session->Close();
  closed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ConnectionManager::CloseAll() {
  std::map<std::string, std::shared_ptr<Session>> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    victims.swap(sessions_);
  }
  for (auto& [id, session] : victims) {
    session->Close();
    closed_.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t ConnectionManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace fgac::server
