#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace fgac::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

char Lexer::Peek(size_t ahead) const {
  if (pos_ + ahead >= input_.size()) return '\0';
  return input_[pos_ + ahead];
}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Status Lexer::ErrorHere(const std::string& msg) const {
  return Status::ParseError(msg + " at line " + std::to_string(line_) +
                            ", column " + std::to_string(column_));
}

void Lexer::SkipWhitespaceAndComments() {
  while (pos_ < input_.size()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (pos_ < input_.size() && Peek() != '\n') Advance();
    } else if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (pos_ < input_.size() && !(Peek() == '*' && Peek(1) == '/')) {
        Advance();
      }
      if (pos_ < input_.size()) {
        Advance();
        Advance();
      }
      // An unterminated comment simply ends the input; Next() returns kEof.
    } else {
      break;
    }
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    FGAC_ASSIGN_OR_RETURN(Token tok, Next());
    bool eof = tok.kind == TokenKind::kEof;
    tokens.push_back(std::move(tok));
    if (eof) break;
  }
  return tokens;
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  Token tok;
  tok.line = line_;
  tok.column = column_;
  if (pos_ >= input_.size()) {
    tok.kind = TokenKind::kEof;
    return tok;
  }

  char c = Peek();

  // Identifiers and keywords.
  if (IsIdentStart(c)) {
    std::string word;
    word += Advance();
    while (pos_ < input_.size()) {
      char n = Peek();
      if (IsIdentChar(n)) {
        word += Advance();
      } else if (n == '-' && IsIdentStart(Peek(1))) {
        // Hyphenated identifiers like `student-id` (paper's schema style).
        // `a - b` (with spaces) still lexes as subtraction.
        word += Advance();
      } else {
        break;
      }
    }
    std::string lower = ToLower(word);
    if (IsKeyword(lower)) {
      tok.kind = TokenKind::kKeyword;
      tok.text = lower;
    } else {
      tok.kind = TokenKind::kIdentifier;
      tok.text = lower;
    }
    return tok;
  }

  // Quoted identifiers.
  if (c == '"') {
    Advance();
    std::string name;
    while (pos_ < input_.size() && Peek() != '"') name += Advance();
    if (pos_ >= input_.size()) return ErrorHere("unterminated quoted identifier");
    Advance();
    tok.kind = TokenKind::kIdentifier;
    tok.text = ToLower(name);
    return tok;
  }

  // String literals.
  if (c == '\'') {
    Advance();
    std::string text;
    while (pos_ < input_.size()) {
      char n = Advance();
      if (n == '\'') {
        if (Peek() == '\'') {
          text += '\'';
          Advance();
        } else {
          tok.kind = TokenKind::kStringLit;
          tok.text = std::move(text);
          return tok;
        }
      } else {
        text += n;
      }
    }
    return ErrorHere("unterminated string literal");
  }

  // Numbers.
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    std::string num;
    bool is_double = false;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(Peek()))) {
      num += Advance();
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      num += Advance();
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(Peek()))) {
        num += Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t look = 1;
      if (Peek(look) == '+' || Peek(look) == '-') ++look;
      if (std::isdigit(static_cast<unsigned char>(Peek(look)))) {
        is_double = true;
        num += Advance();  // e
        if (Peek() == '+' || Peek() == '-') num += Advance();
        while (std::isdigit(static_cast<unsigned char>(Peek()))) num += Advance();
      }
    }
    tok.text = num;
    if (is_double) {
      tok.kind = TokenKind::kDoubleLit;
      tok.double_value = std::strtod(num.c_str(), nullptr);
    } else {
      tok.kind = TokenKind::kIntLit;
      tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
    }
    return tok;
  }

  // Parameters: $name / $$name.
  if (c == '$') {
    Advance();
    bool access = false;
    if (Peek() == '$') {
      Advance();
      access = true;
    }
    std::string name;
    while (pos_ < input_.size() &&
           (IsIdentChar(Peek()) ||
            (Peek() == '-' && IsIdentStart(Peek(1))))) {
      name += Advance();
    }
    if (name.empty()) return ErrorHere("empty parameter name after '$'");
    tok.kind = access ? TokenKind::kAccessParam : TokenKind::kParam;
    tok.text = ToLower(name);
    return tok;
  }

  // Punctuation / operators.
  Advance();
  switch (c) {
    case '(': tok.kind = TokenKind::kLParen; return tok;
    case ')': tok.kind = TokenKind::kRParen; return tok;
    case ',': tok.kind = TokenKind::kComma; return tok;
    case '.': tok.kind = TokenKind::kDot; return tok;
    case ';': tok.kind = TokenKind::kSemicolon; return tok;
    case '*': tok.kind = TokenKind::kStar; return tok;
    case '+': tok.kind = TokenKind::kPlus; return tok;
    case '-': tok.kind = TokenKind::kMinus; return tok;
    case '/': tok.kind = TokenKind::kSlash; return tok;
    case '%': tok.kind = TokenKind::kPercent; return tok;
    case '=': tok.kind = TokenKind::kEq; return tok;
    case '<':
      if (Peek() == '>') {
        Advance();
        tok.kind = TokenKind::kNe;
      } else if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kLe;
      } else {
        tok.kind = TokenKind::kLt;
      }
      return tok;
    case '>':
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kGe;
      } else {
        tok.kind = TokenKind::kGt;
      }
      return tok;
    case '!':
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kNe;
        return tok;
      }
      return ErrorHere("unexpected character '!'");
    default:
      return ErrorHere(std::string("unexpected character '") + c + "'");
  }
}

}  // namespace fgac::sql
