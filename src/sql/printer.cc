#include "sql/printer.h"

#include "common/strings.h"

namespace fgac::sql {

namespace {

const char* BinOpSql(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kLike: return "LIKE";
  }
  return "?";
}

std::string TypeNameSql(TypeName t) {
  switch (t) {
    case TypeName::kInt: return "INT";
    case TypeName::kBigInt: return "BIGINT";
    case TypeName::kDouble: return "DOUBLE";
    case TypeName::kVarchar: return "VARCHAR";
    case TypeName::kBoolean: return "BOOLEAN";
  }
  return "?";
}

std::string ColumnList(const std::vector<std::string>& cols) {
  return "(" + Join(cols, ", ") + ")";
}

}  // namespace

std::string ExprToSql(const ExprPtr& expr) {
  if (expr == nullptr) return "<null>";
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return expr->value.ToString();
    case ExprKind::kColumnRef:
      if (expr->qualifier.empty()) return expr->column;
      return expr->qualifier + "." + expr->column;
    case ExprKind::kParam:
      return "$" + expr->param_name;
    case ExprKind::kAccessParam:
      return "$$" + expr->param_name;
    case ExprKind::kBinary:
      return "(" + ExprToSql(expr->left) + " " + BinOpSql(expr->bin_op) + " " +
             ExprToSql(expr->right) + ")";
    case ExprKind::kUnary:
      switch (expr->un_op) {
        case UnOp::kNot:
          return "(NOT " + ExprToSql(expr->operand) + ")";
        case UnOp::kNeg:
          return "(-" + ExprToSql(expr->operand) + ")";
        case UnOp::kIsNull:
          return "(" + ExprToSql(expr->operand) + " IS NULL)";
        case UnOp::kIsNotNull:
          return "(" + ExprToSql(expr->operand) + " IS NOT NULL)";
      }
      return "?";
    case ExprKind::kFuncCall: {
      std::string out = expr->func_name + "(";
      if (expr->star_arg) {
        out += "*";
      } else {
        if (expr->distinct_arg) out += "DISTINCT ";
        for (size_t i = 0; i < expr->args.size(); ++i) {
          if (i > 0) out += ", ";
          out += ExprToSql(expr->args[i]);
        }
      }
      out += ")";
      return out;
    }
    case ExprKind::kInList: {
      std::string out = "(" + ExprToSql(expr->operand);
      if (expr->negated) out += " NOT";
      out += " IN (";
      for (size_t i = 0; i < expr->in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToSql(expr->in_list[i]);
      }
      out += "))";
      return out;
    }
    case ExprKind::kBetween: {
      std::string out = "(" + ExprToSql(expr->operand);
      if (expr->negated) out += " NOT";
      out += " BETWEEN " + ExprToSql(expr->left) + " AND " +
             ExprToSql(expr->right) + ")";
      return out;
    }
  }
  return "?";
}

std::string TableRefToSql(const TableRefPtr& ref) {
  if (ref == nullptr) return "<null>";
  if (ref->kind == TableRef::Kind::kNamed) {
    if (ref->alias.empty() || ref->alias == ref->name) return ref->name;
    return ref->name + " AS " + ref->alias;
  }
  return "(" + TableRefToSql(ref->join_left) + " JOIN " +
         TableRefToSql(ref->join_right) + " ON " + ExprToSql(ref->join_on) +
         ")";
}

std::string SelectToSql(const SelectStmt& stmt) {
  std::string out = "SELECT ";
  if (stmt.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = stmt.items[i];
    if (item.is_star) {
      out += item.star_qualifier.empty() ? "*" : item.star_qualifier + ".*";
    } else {
      out += ExprToSql(item.expr);
      if (!item.alias.empty()) out += " AS " + item.alias;
    }
  }
  if (!stmt.from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      if (i > 0) out += ", ";
      out += TableRefToSql(stmt.from[i]);
    }
  }
  if (stmt.where != nullptr) out += " WHERE " + ExprToSql(stmt.where);
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExprToSql(stmt.group_by[i]);
    }
  }
  if (stmt.having != nullptr) out += " HAVING " + ExprToSql(stmt.having);
  for (const auto& branch : stmt.union_all) {
    out += " UNION ALL " + SelectToSql(*branch);
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExprToSql(stmt.order_by[i].expr);
      if (stmt.order_by[i].descending) out += " DESC";
    }
  }
  if (stmt.limit.has_value()) out += " LIMIT " + std::to_string(*stmt.limit);
  return out;
}

std::string StmtToSql(const Stmt& stmt) {
  switch (stmt.kind()) {
    case StmtKind::kSelect:
      return SelectToSql(static_cast<const SelectStmt&>(stmt));
    case StmtKind::kCreateTable: {
      const auto& s = static_cast<const CreateTableStmt&>(stmt);
      std::string out = "CREATE TABLE " + s.name + " (";
      for (size_t i = 0; i < s.columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.columns[i].name + " " + TypeNameSql(s.columns[i].type);
        if (s.columns[i].not_null) out += " NOT NULL";
      }
      if (!s.primary_key.empty()) {
        out += ", PRIMARY KEY " + ColumnList(s.primary_key);
      }
      for (const ForeignKeyClause& fk : s.foreign_keys) {
        out += ", FOREIGN KEY " + ColumnList(fk.columns) + " REFERENCES " +
               fk.ref_table;
        if (!fk.ref_columns.empty()) out += " " + ColumnList(fk.ref_columns);
      }
      out += ")";
      return out;
    }
    case StmtKind::kCreateView: {
      const auto& s = static_cast<const CreateViewStmt&>(stmt);
      std::string out = "CREATE ";
      if (s.authorization) out += "AUTHORIZATION ";
      out += "VIEW " + s.name + " AS " + SelectToSql(*s.select);
      return out;
    }
    case StmtKind::kCreateInclusion: {
      const auto& s = static_cast<const CreateInclusionStmt&>(stmt);
      std::string out = "CREATE INCLUSION DEPENDENCY " + s.name + " ON " +
                        s.src_table + " " + ColumnList(s.src_columns);
      if (s.src_where != nullptr) out += " WHERE " + ExprToSql(s.src_where);
      out += " REFERENCES " + s.dst_table + " " + ColumnList(s.dst_columns);
      return out;
    }
    case StmtKind::kInsert: {
      const auto& s = static_cast<const InsertStmt&>(stmt);
      std::string out = "INSERT INTO " + s.table;
      if (!s.columns.empty()) out += " " + ColumnList(s.columns);
      out += " VALUES ";
      for (size_t r = 0; r < s.rows.size(); ++r) {
        if (r > 0) out += ", ";
        out += "(";
        for (size_t i = 0; i < s.rows[r].size(); ++i) {
          if (i > 0) out += ", ";
          out += ExprToSql(s.rows[r][i]);
        }
        out += ")";
      }
      return out;
    }
    case StmtKind::kUpdate: {
      const auto& s = static_cast<const UpdateStmt&>(stmt);
      std::string out = "UPDATE " + s.table + " SET ";
      for (size_t i = 0; i < s.assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.assignments[i].first + " = " + ExprToSql(s.assignments[i].second);
      }
      if (s.where != nullptr) out += " WHERE " + ExprToSql(s.where);
      return out;
    }
    case StmtKind::kDelete: {
      const auto& s = static_cast<const DeleteStmt&>(stmt);
      std::string out = "DELETE FROM " + s.table;
      if (s.where != nullptr) out += " WHERE " + ExprToSql(s.where);
      return out;
    }
    case StmtKind::kGrant: {
      const auto& s = static_cast<const GrantStmt&>(stmt);
      return "GRANT SELECT ON " + s.object + " TO " + s.grantee;
    }
    case StmtKind::kRevoke: {
      const auto& s = static_cast<const RevokeStmt&>(stmt);
      return "REVOKE SELECT ON " + s.object + " FROM " + s.grantee;
    }
    case StmtKind::kExplain: {
      const auto& s = static_cast<const ExplainStmt&>(stmt);
      std::string head = s.analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ";
      if (s.execute != nullptr) return head + StmtToSql(*s.execute);
      return head + SelectToSql(*s.select);
    }
    case StmtKind::kPrepare: {
      const auto& s = static_cast<const PrepareStmt&>(stmt);
      return "PREPARE " + s.name + " AS " + SelectToSql(*s.select);
    }
    case StmtKind::kExecute: {
      const auto& s = static_cast<const ExecuteStmt&>(stmt);
      std::string out = "EXECUTE " + s.name;
      if (!s.args.empty()) {
        out += " (";
        for (size_t i = 0; i < s.args.size(); ++i) {
          if (i > 0) out += ", ";
          out += ExprToSql(s.args[i]);
        }
        out += ")";
      }
      return out;
    }
    case StmtKind::kDeallocate: {
      const auto& s = static_cast<const DeallocateStmt&>(stmt);
      return s.name.empty() ? "DEALLOCATE ALL" : "DEALLOCATE " + s.name;
    }
    case StmtKind::kAuthorize: {
      const auto& s = static_cast<const AuthorizeStmt&>(stmt);
      std::string out = "AUTHORIZE ";
      switch (s.op) {
        case AuthorizeStmt::Op::kInsert: out += "INSERT"; break;
        case AuthorizeStmt::Op::kUpdate: out += "UPDATE"; break;
        case AuthorizeStmt::Op::kDelete: out += "DELETE"; break;
      }
      out += " ON " + s.table;
      if (!s.columns.empty()) out += " " + ColumnList(s.columns);
      if (s.where != nullptr) out += " WHERE " + ExprToSql(s.where);
      return out;
    }
    case StmtKind::kDrop: {
      const auto& s = static_cast<const DropStmt&>(stmt);
      return std::string("DROP ") +
             (s.what == DropStmt::What::kTable ? "TABLE " : "VIEW ") + s.name;
    }
  }
  return "<stmt>";
}

}  // namespace fgac::sql
