#ifndef FGAC_SQL_LEXER_H_
#define FGAC_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace fgac::sql {

/// Tokenizes a SQL string.
///
/// Identifiers may contain letters, digits, '_' and (as in the paper's
/// running example, e.g. `student-id`) embedded '-' when surrounded by
/// identifier characters and not parseable as subtraction; to keep the
/// grammar unambiguous we lex `a-b` as a single identifier only when there
/// is no whitespace around the '-' and the character after it starts an
/// identifier. `$name` lexes as a parameter, `$$name` as an access-pattern
/// parameter. `-- comment` and `/* ... */` comments are skipped.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Lexes the whole input; appends a kEof token on success.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> Next();
  char Peek(size_t ahead = 0) const;
  char Advance();
  void SkipWhitespaceAndComments();
  Status ErrorHere(const std::string& msg) const;

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace fgac::sql

#endif  // FGAC_SQL_LEXER_H_
