#ifndef FGAC_SQL_TOKEN_H_
#define FGAC_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace fgac::sql {

/// Lexical token categories for the SQL subset.
enum class TokenKind {
  kEof,
  kIdentifier,   // students, "Quoted Name"
  kKeyword,      // SELECT, FROM, ... (text stored lowercased)
  kStringLit,    // 'abc'
  kIntLit,       // 42
  kDoubleLit,    // 1.5
  kParam,        // $user_id  (parameterized-view parameter, Section 2)
  kAccessParam,  // $$1       (access-pattern parameter, Section 2/6)
  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,    // =
  kNe,    // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

/// One lexed token with source position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEof;
  /// Identifier/keyword text (lowercased for keywords and unquoted
  /// identifiers), string literal contents, or numeric literal text.
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  /// 1-based position in the input.
  int line = 1;
  int column = 1;
};

/// Returns a printable name for a token kind (for diagnostics).
const char* TokenKindName(TokenKind kind);

/// True if `word` (lowercase) is a reserved keyword of the subset.
bool IsKeyword(const std::string& word);

}  // namespace fgac::sql

#endif  // FGAC_SQL_TOKEN_H_
