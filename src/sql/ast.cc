#include "sql/ast.h"

#include <utility>

namespace fgac::sql {

namespace {

std::shared_ptr<Expr> NewExpr(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

}  // namespace

ExprPtr MakeLiteral(Value v) {
  auto e = NewExpr(ExprKind::kLiteral);
  e->value = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = NewExpr(ExprKind::kColumnRef);
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeParam(std::string name) {
  auto e = NewExpr(ExprKind::kParam);
  e->param_name = std::move(name);
  return e;
}

ExprPtr MakeAccessParam(std::string name) {
  auto e = NewExpr(ExprKind::kAccessParam);
  e->param_name = std::move(name);
  return e;
}

ExprPtr MakeBinary(BinOp op, ExprPtr left, ExprPtr right) {
  auto e = NewExpr(ExprKind::kBinary);
  e->bin_op = op;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr MakeUnary(UnOp op, ExprPtr operand) {
  auto e = NewExpr(ExprKind::kUnary);
  e->un_op = op;
  e->operand = std::move(operand);
  return e;
}

ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args,
                     bool distinct_arg, bool star_arg) {
  auto e = NewExpr(ExprKind::kFuncCall);
  e->func_name = std::move(name);
  e->args = std::move(args);
  e->distinct_arg = distinct_arg;
  e->star_arg = star_arg;
  return e;
}

ExprPtr MakeInList(ExprPtr operand, std::vector<ExprPtr> list, bool negated) {
  auto e = NewExpr(ExprKind::kInList);
  e->operand = std::move(operand);
  e->in_list = std::move(list);
  e->negated = negated;
  return e;
}

ExprPtr MakeBetween(ExprPtr operand, ExprPtr lo, ExprPtr hi, bool negated) {
  auto e = NewExpr(ExprKind::kBetween);
  e->operand = std::move(operand);
  e->left = std::move(lo);
  e->right = std::move(hi);
  e->negated = negated;
  return e;
}

bool IsAggregateFunc(const std::string& lowercase_name) {
  return lowercase_name == "count" || lowercase_name == "sum" ||
         lowercase_name == "avg" || lowercase_name == "min" ||
         lowercase_name == "max";
}

namespace {

template <typename Fn>
void VisitExpr(const ExprPtr& expr, const Fn& fn) {
  if (expr == nullptr) return;
  fn(expr);
  VisitExpr(expr->left, fn);
  VisitExpr(expr->right, fn);
  VisitExpr(expr->operand, fn);
  for (const auto& a : expr->args) VisitExpr(a, fn);
  for (const auto& a : expr->in_list) VisitExpr(a, fn);
}

}  // namespace

void CollectParams(const ExprPtr& expr, std::vector<std::string>* out) {
  VisitExpr(expr, [out](const ExprPtr& e) {
    if (e->kind == ExprKind::kParam) out->push_back(e->param_name);
  });
}

void CollectAccessParams(const ExprPtr& expr, std::vector<std::string>* out) {
  VisitExpr(expr, [out](const ExprPtr& e) {
    if (e->kind == ExprKind::kAccessParam) out->push_back(e->param_name);
  });
}

ExprPtr SubstituteParams(const ExprPtr& expr,
                         const std::map<std::string, Value>& params,
                         const std::map<std::string, Value>& access_params) {
  if (expr == nullptr) return nullptr;
  switch (expr->kind) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return expr;
    case ExprKind::kParam: {
      auto it = params.find(expr->param_name);
      if (it != params.end()) return MakeLiteral(it->second);
      return expr;
    }
    case ExprKind::kAccessParam: {
      auto it = access_params.find(expr->param_name);
      if (it != access_params.end()) return MakeLiteral(it->second);
      return expr;
    }
    case ExprKind::kBinary:
      return MakeBinary(expr->bin_op,
                        SubstituteParams(expr->left, params, access_params),
                        SubstituteParams(expr->right, params, access_params));
    case ExprKind::kUnary:
      return MakeUnary(expr->un_op,
                       SubstituteParams(expr->operand, params, access_params));
    case ExprKind::kFuncCall: {
      std::vector<ExprPtr> args;
      args.reserve(expr->args.size());
      for (const auto& a : expr->args) {
        args.push_back(SubstituteParams(a, params, access_params));
      }
      return MakeFuncCall(expr->func_name, std::move(args), expr->distinct_arg,
                          expr->star_arg);
    }
    case ExprKind::kInList: {
      std::vector<ExprPtr> list;
      list.reserve(expr->in_list.size());
      for (const auto& a : expr->in_list) {
        list.push_back(SubstituteParams(a, params, access_params));
      }
      return MakeInList(SubstituteParams(expr->operand, params, access_params),
                        std::move(list), expr->negated);
    }
    case ExprKind::kBetween:
      return MakeBetween(
          SubstituteParams(expr->operand, params, access_params),
          SubstituteParams(expr->left, params, access_params),
          SubstituteParams(expr->right, params, access_params), expr->negated);
  }
  return expr;
}

TableRefPtr MakeNamedTable(std::string name, std::string alias) {
  auto t = std::make_shared<TableRef>();
  t->kind = TableRef::Kind::kNamed;
  t->name = std::move(name);
  t->alias = std::move(alias);
  return t;
}

TableRefPtr MakeJoin(TableRefPtr left, TableRefPtr right, ExprPtr on) {
  auto t = std::make_shared<TableRef>();
  t->kind = TableRef::Kind::kJoin;
  t->join_left = std::move(left);
  t->join_right = std::move(right);
  t->join_on = std::move(on);
  return t;
}

namespace {

TableRefPtr SubstituteTableRef(const TableRefPtr& ref,
                               const std::map<std::string, Value>& params,
                               const std::map<std::string, Value>& access) {
  if (ref == nullptr) return nullptr;
  if (ref->kind == TableRef::Kind::kNamed) return ref;
  return MakeJoin(SubstituteTableRef(ref->join_left, params, access),
                  SubstituteTableRef(ref->join_right, params, access),
                  SubstituteParams(ref->join_on, params, access));
}

void CollectTableRefParams(const TableRefPtr& ref,
                           std::vector<std::string>* params,
                           std::vector<std::string>* access) {
  if (ref == nullptr || ref->kind == TableRef::Kind::kNamed) return;
  CollectParams(ref->join_on, params);
  CollectAccessParams(ref->join_on, access);
  CollectTableRefParams(ref->join_left, params, access);
  CollectTableRefParams(ref->join_right, params, access);
}

}  // namespace

std::unique_ptr<SelectStmt> SelectStmt::CloneWithParams(
    const std::map<std::string, Value>& params,
    const std::map<std::string, Value>& access_params) const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  for (const SelectItem& item : items) {
    SelectItem copy = item;
    copy.expr = SubstituteParams(item.expr, params, access_params);
    out->items.push_back(std::move(copy));
  }
  for (const TableRefPtr& ref : from) {
    out->from.push_back(SubstituteTableRef(ref, params, access_params));
  }
  out->where = SubstituteParams(where, params, access_params);
  for (const ExprPtr& g : group_by) {
    out->group_by.push_back(SubstituteParams(g, params, access_params));
  }
  out->having = SubstituteParams(having, params, access_params);
  for (const OrderItem& o : order_by) {
    out->order_by.push_back(
        {SubstituteParams(o.expr, params, access_params), o.descending});
  }
  out->limit = limit;
  for (const auto& branch : union_all) {
    out->union_all.push_back(std::shared_ptr<const SelectStmt>(
        branch->CloneWithParams(params, access_params).release()));
  }
  return out;
}

void SelectStmt::CollectAllParams(std::vector<std::string>* params,
                                  std::vector<std::string>* access_params) const {
  for (const SelectItem& item : items) {
    CollectParams(item.expr, params);
    CollectAccessParams(item.expr, access_params);
  }
  for (const TableRefPtr& ref : from) {
    CollectTableRefParams(ref, params, access_params);
  }
  CollectParams(where, params);
  CollectAccessParams(where, access_params);
  for (const ExprPtr& g : group_by) {
    CollectParams(g, params);
    CollectAccessParams(g, access_params);
  }
  CollectParams(having, params);
  CollectAccessParams(having, access_params);
  for (const OrderItem& o : order_by) {
    CollectParams(o.expr, params);
    CollectAccessParams(o.expr, access_params);
  }
  for (const auto& branch : union_all) {
    branch->CollectAllParams(params, access_params);
  }
}

}  // namespace fgac::sql
