#ifndef FGAC_SQL_AST_H_
#define FGAC_SQL_AST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace fgac::sql {

// ---------------------------------------------------------------------------
// Scalar expressions
// ---------------------------------------------------------------------------

struct Expr;
/// AST expressions are immutable and shared; rewrites build new nodes.
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv, kMod,
  kLike,
};

enum class UnOp { kNot, kNeg, kIsNull, kIsNotNull };

enum class ExprKind {
  kLiteral,      // 42, 'CS101', TRUE, NULL
  kColumnRef,    // grades.student_id or student_id
  kParam,        // $user_id   (parameterized view, Section 2)
  kAccessParam,  // $$1        (access-pattern view, Sections 2 and 6)
  kBinary,
  kUnary,
  kFuncCall,     // aggregates count/sum/avg/min/max, and old()/new()
  kInList,       // x IN (1, 2, 3)
  kBetween,      // x BETWEEN lo AND hi
};

/// A single flat expression node. Only the fields relevant to `kind` are
/// meaningful; factory functions below enforce the shape.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value value;

  // kColumnRef
  std::string qualifier;  // empty when unqualified
  std::string column;

  // kParam / kAccessParam
  std::string param_name;

  // kBinary
  BinOp bin_op = BinOp::kEq;
  ExprPtr left;
  ExprPtr right;

  // kUnary
  UnOp un_op = UnOp::kNot;
  ExprPtr operand;

  // kFuncCall (name lowercased; star_arg for COUNT(*))
  std::string func_name;
  std::vector<ExprPtr> args;
  bool distinct_arg = false;
  bool star_arg = false;

  // kInList (operand = tested expr) / kBetween (operand BETWEEN left AND right)
  std::vector<ExprPtr> in_list;
  bool negated = false;
};

// Factory helpers (all return shared immutable nodes).
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeParam(std::string name);
ExprPtr MakeAccessParam(std::string name);
ExprPtr MakeBinary(BinOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeUnary(UnOp op, ExprPtr operand);
ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args,
                     bool distinct_arg = false, bool star_arg = false);
ExprPtr MakeInList(ExprPtr operand, std::vector<ExprPtr> list, bool negated);
ExprPtr MakeBetween(ExprPtr operand, ExprPtr lo, ExprPtr hi, bool negated);

/// True for count/sum/avg/min/max.
bool IsAggregateFunc(const std::string& lowercase_name);

/// Collects the names of all `$param` references in `expr` into `out`.
void CollectParams(const ExprPtr& expr, std::vector<std::string>* out);

/// Collects the names of all `$$param` references in `expr` into `out`.
void CollectAccessParams(const ExprPtr& expr, std::vector<std::string>* out);

/// Returns `expr` with every `$name` in `params` replaced by a literal, and
/// every `$$name` in `access_params` replaced by a literal. Parameters not
/// present in the maps are left untouched.
ExprPtr SubstituteParams(const ExprPtr& expr,
                         const std::map<std::string, Value>& params,
                         const std::map<std::string, Value>& access_params);

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

/// FROM-clause item: either a named relation (base table or view) with an
/// optional alias, or an explicit INNER JOIN tree.
struct TableRef {
  enum class Kind { kNamed, kJoin };
  Kind kind = Kind::kNamed;

  // kNamed
  std::string name;
  std::string alias;  // empty = use `name`

  // kJoin
  std::shared_ptr<const TableRef> join_left;
  std::shared_ptr<const TableRef> join_right;
  ExprPtr join_on;
};
using TableRefPtr = std::shared_ptr<const TableRef>;

TableRefPtr MakeNamedTable(std::string name, std::string alias = "");
TableRefPtr MakeJoin(TableRefPtr left, TableRefPtr right, ExprPtr on);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kSelect,
  kCreateTable,
  kCreateView,
  kCreateInclusion,
  kInsert,
  kUpdate,
  kDelete,
  kGrant,
  kRevoke,
  kAuthorize,
  kDrop,
  kExplain,
  kPrepare,
  kExecute,
  kDeallocate,
};

/// Base class for parsed statements; downcast via `kind()`.
class Stmt {
 public:
  explicit Stmt(StmtKind kind) : kind_(kind) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  StmtKind kind() const { return kind_; }

 private:
  StmtKind kind_;
};
using StmtPtr = std::unique_ptr<Stmt>;

/// One item of a SELECT list: either `*` / `t.*` or an expression with an
/// optional alias.
struct SelectItem {
  bool is_star = false;
  std::string star_qualifier;  // for `t.*`
  ExprPtr expr;
  std::string alias;
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

class SelectStmt : public Stmt {
 public:
  SelectStmt() : Stmt(StmtKind::kSelect) {}

  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRefPtr> from;
  ExprPtr where;  // nullable
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // nullable
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  /// Additional UNION ALL branches (each a plain core select without its
  /// own ORDER BY/LIMIT — those apply to the whole union and live here).
  std::vector<std::shared_ptr<const SelectStmt>> union_all;

  /// Deep-copies this statement, substituting parameters in every embedded
  /// expression (see SubstituteParams).
  std::unique_ptr<SelectStmt> CloneWithParams(
      const std::map<std::string, Value>& params,
      const std::map<std::string, Value>& access_params) const;

  /// Collects all `$`/`$$` parameter names referenced anywhere.
  void CollectAllParams(std::vector<std::string>* params,
                        std::vector<std::string>* access_params) const;
};

/// SQL type names supported by the subset.
enum class TypeName { kInt, kBigInt, kDouble, kVarchar, kBoolean };

struct ColumnDef {
  std::string name;
  TypeName type = TypeName::kInt;
  bool not_null = false;
};

struct ForeignKeyClause {
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;  // empty = referenced table's PK
};

class CreateTableStmt : public Stmt {
 public:
  CreateTableStmt() : Stmt(StmtKind::kCreateTable) {}
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;
  std::vector<ForeignKeyClause> foreign_keys;
};

/// CREATE [AUTHORIZATION] VIEW name AS select.
class CreateViewStmt : public Stmt {
 public:
  CreateViewStmt() : Stmt(StmtKind::kCreateView) {}
  std::string name;
  bool authorization = false;
  std::shared_ptr<const SelectStmt> select;
};

/// CREATE INCLUSION DEPENDENCY name ON src(cols) [WHERE pred]
/// REFERENCES dst(cols): every tuple of src satisfying pred has a matching
/// tuple in dst on the listed column pairs. This is the integrity-constraint
/// form consumed by inference rules U3a/U3b/U3c (Section 5.3).
class CreateInclusionStmt : public Stmt {
 public:
  CreateInclusionStmt() : Stmt(StmtKind::kCreateInclusion) {}
  std::string name;
  std::string src_table;
  std::vector<std::string> src_columns;
  ExprPtr src_where;  // nullable
  std::string dst_table;
  std::vector<std::string> dst_columns;
};

class InsertStmt : public Stmt {
 public:
  InsertStmt() : Stmt(StmtKind::kInsert) {}
  std::string table;
  std::vector<std::string> columns;  // empty = all, in table order
  std::vector<std::vector<ExprPtr>> rows;
};

class UpdateStmt : public Stmt {
 public:
  UpdateStmt() : Stmt(StmtKind::kUpdate) {}
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // nullable
};

class DeleteStmt : public Stmt {
 public:
  DeleteStmt() : Stmt(StmtKind::kDelete) {}
  std::string table;
  ExprPtr where;  // nullable
};

/// GRANT SELECT ON view TO user (Section 4.1: authorization views are
/// granted like other privileges).
class GrantStmt : public Stmt {
 public:
  GrantStmt() : Stmt(StmtKind::kGrant) {}
  std::string object;
  std::string grantee;
};

/// AUTHORIZE INSERT|DELETE ON table WHERE pred
/// AUTHORIZE UPDATE ON table(col, ...) WHERE pred   (Section 4.4).
/// In UPDATE/DELETE predicates, old(t.c) / new(t.c) refer to the tuple
/// before/after modification; they parse as FuncCalls named "old"/"new".
/// REVOKE SELECT ON view FROM user.
class RevokeStmt : public Stmt {
 public:
  RevokeStmt() : Stmt(StmtKind::kRevoke) {}
  std::string object;
  std::string grantee;
};

/// EXPLAIN <select>: returns the canonical and optimized plans as text.
/// EXPLAIN ANALYZE additionally executes the query and annotates the plan
/// with per-operator row/chunk/time counters plus the validity trace.
class ExecuteStmt;

class ExplainStmt : public Stmt {
 public:
  ExplainStmt() : Stmt(StmtKind::kExplain) {}
  /// Exactly one of `select` / `execute` is set: EXPLAIN [ANALYZE] of a
  /// SELECT, or of a prepared statement (EXPLAIN ANALYZE EXECUTE name(...),
  /// resolved against the connection session's registry).
  std::shared_ptr<const SelectStmt> select;
  std::shared_ptr<const ExecuteStmt> execute;
  bool analyze = false;
};

/// PREPARE name AS <select>. The statement body may reference positional
/// placeholders $1..$n (lexed as parameters named "1".."n"); they are bound
/// into the plan once and instantiated per EXECUTE.
class PrepareStmt : public Stmt {
 public:
  PrepareStmt() : Stmt(StmtKind::kPrepare) {}
  std::string name;
  std::shared_ptr<const SelectStmt> select;
};

/// EXECUTE name or EXECUTE name (arg, ...). Arguments are constant
/// expressions; argument i supplies placeholder $i+1.
class ExecuteStmt : public Stmt {
 public:
  ExecuteStmt() : Stmt(StmtKind::kExecute) {}
  std::string name;
  std::vector<ExprPtr> args;
};

/// DEALLOCATE name (or DEALLOCATE ALL).
class DeallocateStmt : public Stmt {
 public:
  DeallocateStmt() : Stmt(StmtKind::kDeallocate) {}
  std::string name;  // empty = ALL
};

class AuthorizeStmt : public Stmt {
 public:
  AuthorizeStmt() : Stmt(StmtKind::kAuthorize) {}
  enum class Op { kInsert, kUpdate, kDelete };
  Op op = Op::kInsert;
  std::string table;
  std::vector<std::string> columns;  // UPDATE only: updatable columns
  ExprPtr where;                     // nullable = always authorized
  /// Optional `TO principal`; empty = the implicit "public" principal.
  std::string grantee;
};

class DropStmt : public Stmt {
 public:
  DropStmt() : Stmt(StmtKind::kDrop) {}
  enum class What { kTable, kView };
  What what = What::kTable;
  std::string name;
};

}  // namespace fgac::sql

#endif  // FGAC_SQL_AST_H_
