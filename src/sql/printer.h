#ifndef FGAC_SQL_PRINTER_H_
#define FGAC_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace fgac::sql {

/// Renders an expression back to SQL text (parenthesized conservatively so
/// the output re-parses to an equivalent tree).
std::string ExprToSql(const ExprPtr& expr);

/// Renders a FROM-clause item.
std::string TableRefToSql(const TableRefPtr& ref);

/// Renders any statement back to SQL text.
std::string StmtToSql(const Stmt& stmt);

/// Renders a SELECT statement back to SQL text.
std::string SelectToSql(const SelectStmt& stmt);

}  // namespace fgac::sql

#endif  // FGAC_SQL_PRINTER_H_
