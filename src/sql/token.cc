#include "sql/token.h"

#include <algorithm>
#include <array>

namespace fgac::sql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kStringLit: return "string literal";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kDoubleLit: return "double literal";
    case TokenKind::kParam: return "parameter";
    case TokenKind::kAccessParam: return "access-pattern parameter";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
  }
  return "token";
}

bool IsKeyword(const std::string& word) {
  static const std::array<const char*, 67> kKeywords = {
      "select",   "from",      "where",     "group",     "by",
      "having",   "order",     "asc",       "desc",      "limit",
      "distinct", "as",        "and",       "or",        "not",
      "in",       "between",   "like",      "is",        "null",
      "true",     "false",     "join",      "inner",     "on",
      "create",   "table",     "view",      "authorization",
      "insert",   "into",      "values",    "update",    "set",
      "delete",   "grant",     "to",        "authorize", "old",
      "new",      "primary",   "key",       "foreign",   "references",
      "unique",   "int",       "bigint",    "double",    "varchar",
      "boolean",  "drop",      "inclusion", "dependency","constraint",
      "count",    "sum",       "avg",       "min",       "max",
      "union",    "all",     "revoke",    "explain",   "analyze",
      "prepare",  "execute",   "deallocate",
  };
  return std::find_if(kKeywords.begin(), kKeywords.end(), [&](const char* k) {
           return word == k;
         }) != kKeywords.end();
}

}  // namespace fgac::sql
