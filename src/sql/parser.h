#ifndef FGAC_SQL_PARSER_H_
#define FGAC_SQL_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace fgac::sql {

/// Recursive-descent parser for the SQL subset described in DESIGN.md:
/// SELECT queries (inner joins, aggregation, DISTINCT, ORDER BY, LIMIT),
/// CREATE TABLE / [AUTHORIZATION] VIEW / INCLUSION DEPENDENCY, INSERT,
/// UPDATE, DELETE, GRANT, AUTHORIZE, DROP. Nested subqueries are rejected,
/// matching the paper's Section 5 assumption.
class Parser {
 public:
  /// Parses exactly one statement (a trailing ';' is allowed).
  static Result<StmtPtr> ParseStatement(std::string_view sql);

  /// Parses a ';'-separated script.
  static Result<std::vector<StmtPtr>> ParseScript(std::string_view sql);

  /// Parses a single scalar expression (used by tests).
  static Result<ExprPtr> ParseExpression(std::string_view sql);

  /// Convenience: parses a statement that must be a SELECT.
  static Result<std::shared_ptr<const SelectStmt>> ParseSelect(
      std::string_view sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const;
  bool CheckKeyword(const char* kw, size_t ahead = 0) const;
  bool MatchKeyword(const char* kw);
  bool Match(TokenKind kind);
  Status Expect(TokenKind kind, const char* what);
  Status ExpectKeyword(const char* kw);
  Status ErrorHere(const std::string& msg) const;

  Result<StmtPtr> Statement();
  Result<std::unique_ptr<SelectStmt>> Select();
  /// One core select (no UNION/ORDER BY/LIMIT handling).
  Result<std::unique_ptr<SelectStmt>> SelectCore();
  Result<StmtPtr> Create();
  Result<StmtPtr> CreateTable();
  Result<StmtPtr> CreateView(bool authorization);
  Result<StmtPtr> CreateInclusion();
  Result<StmtPtr> Insert();
  Result<StmtPtr> Update();
  Result<StmtPtr> Delete();
  Result<StmtPtr> Grant();
  Result<StmtPtr> Revoke();
  Result<StmtPtr> Authorize();
  Result<StmtPtr> Drop();
  Result<StmtPtr> Explain();
  Result<StmtPtr> Prepare();
  Result<StmtPtr> ExecutePrepared();
  Result<StmtPtr> Deallocate();

  Result<SelectItem> ParseSelectItem();
  Result<TableRefPtr> ParseTableRef();
  Result<TableRefPtr> ParseTablePrimary();
  Result<std::vector<std::string>> ParseColumnNameList();
  Result<TypeName> ParseTypeName();

  // Expression precedence-climbing.
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace fgac::sql

#endif  // FGAC_SQL_PARSER_H_
