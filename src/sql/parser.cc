#include "sql/parser.h"

#include <utility>

#include "sql/lexer.h"

namespace fgac::sql {

namespace {

bool IsFuncKeyword(const std::string& kw) {
  return IsAggregateFunc(kw) || kw == "old" || kw == "new";
}

}  // namespace

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEof sentinel
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Check(TokenKind kind) const { return Peek().kind == kind; }

bool Parser::CheckKeyword(const char* kw, size_t ahead) const {
  const Token& t = Peek(ahead);
  return t.kind == TokenKind::kKeyword && t.text == kw;
}

bool Parser::MatchKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ErrorHere(const std::string& msg) const {
  const Token& t = Peek();
  std::string got = t.kind == TokenKind::kEof
                        ? "end of input"
                        : (t.text.empty() ? TokenKindName(t.kind)
                                          : "'" + t.text + "'");
  return Status::ParseError(msg + ", got " + got + " at line " +
                            std::to_string(t.line) + ", column " +
                            std::to_string(t.column));
}

Status Parser::Expect(TokenKind kind, const char* what) {
  if (Match(kind)) return Status::OK();
  return ErrorHere(std::string("expected ") + what);
}

Status Parser::ExpectKeyword(const char* kw) {
  if (MatchKeyword(kw)) return Status::OK();
  return ErrorHere(std::string("expected keyword '") + kw + "'");
}

Result<StmtPtr> Parser::ParseStatement(std::string_view sql) {
  Lexer lexer(sql);
  FGAC_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  FGAC_ASSIGN_OR_RETURN(StmtPtr stmt, parser.Statement());
  parser.Match(TokenKind::kSemicolon);
  if (!parser.Check(TokenKind::kEof)) {
    return parser.ErrorHere("expected end of statement");
  }
  return stmt;
}

Result<std::vector<StmtPtr>> Parser::ParseScript(std::string_view sql) {
  Lexer lexer(sql);
  FGAC_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  std::vector<StmtPtr> out;
  while (!parser.Check(TokenKind::kEof)) {
    if (parser.Match(TokenKind::kSemicolon)) continue;
    FGAC_ASSIGN_OR_RETURN(StmtPtr stmt, parser.Statement());
    out.push_back(std::move(stmt));
    if (!parser.Check(TokenKind::kEof)) {
      FGAC_RETURN_NOT_OK(
          parser.Expect(TokenKind::kSemicolon, "';' between statements"));
    }
  }
  return out;
}

Result<ExprPtr> Parser::ParseExpression(std::string_view sql) {
  Lexer lexer(sql);
  FGAC_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  FGAC_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseExpr());
  if (!parser.Check(TokenKind::kEof)) {
    return parser.ErrorHere("expected end of expression");
  }
  return expr;
}

Result<std::shared_ptr<const SelectStmt>> Parser::ParseSelect(
    std::string_view sql) {
  FGAC_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement(sql));
  if (stmt->kind() != StmtKind::kSelect) {
    return Status::ParseError("expected a SELECT statement");
  }
  return std::shared_ptr<const SelectStmt>(
      static_cast<const SelectStmt*>(stmt.release()));
}

Result<StmtPtr> Parser::Statement() {
  if (CheckKeyword("select")) {
    FGAC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, Select());
    return StmtPtr(sel.release());
  }
  if (CheckKeyword("create")) return Create();
  if (CheckKeyword("insert")) return Insert();
  if (CheckKeyword("update")) return Update();
  if (CheckKeyword("delete")) return Delete();
  if (CheckKeyword("grant")) return Grant();
  if (CheckKeyword("revoke")) return Revoke();
  if (CheckKeyword("authorize")) return Authorize();
  if (CheckKeyword("drop")) return Drop();
  if (CheckKeyword("explain")) return Explain();
  if (CheckKeyword("prepare")) return Prepare();
  if (CheckKeyword("execute")) return ExecutePrepared();
  if (CheckKeyword("deallocate")) return Deallocate();
  return ErrorHere("expected a statement");
}

Result<std::unique_ptr<SelectStmt>> Parser::Select() {
  FGAC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, SelectCore());
  // UNION ALL chain: further core selects; ORDER BY/LIMIT afterwards apply
  // to the whole union and are stored on the head statement.
  while (CheckKeyword("union")) {
    Advance();
    FGAC_RETURN_NOT_OK(ExpectKeyword("all"));
    FGAC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> branch, SelectCore());
    stmt->union_all.push_back(
        std::shared_ptr<const SelectStmt>(branch.release()));
  }
  if (CheckKeyword("order")) {
    Advance();
    FGAC_RETURN_NOT_OK(ExpectKeyword("by"));
    do {
      OrderItem item;
      FGAC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("desc")) item.descending = true;
      else MatchKeyword("asc");
      stmt->order_by.push_back(std::move(item));
    } while (Match(TokenKind::kComma));
  }
  if (MatchKeyword("limit")) {
    if (!Check(TokenKind::kIntLit)) return ErrorHere("expected LIMIT count");
    stmt->limit = Advance().int_value;
  }
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::SelectCore() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("select"));
  auto stmt = std::make_unique<SelectStmt>();
  if (MatchKeyword("distinct")) stmt->distinct = true;
  else MatchKeyword("all");

  // Select list.
  do {
    FGAC_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    stmt->items.push_back(std::move(item));
  } while (Match(TokenKind::kComma));

  if (MatchKeyword("from")) {
    do {
      FGAC_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRef());
      stmt->from.push_back(std::move(ref));
    } while (Match(TokenKind::kComma));
  }

  if (MatchKeyword("where")) {
    FGAC_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (CheckKeyword("group")) {
    Advance();
    FGAC_RETURN_NOT_OK(ExpectKeyword("by"));
    do {
      FGAC_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
      stmt->group_by.push_back(std::move(g));
    } while (Match(TokenKind::kComma));
  }
  if (MatchKeyword("having")) {
    FGAC_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  return stmt;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  if (Check(TokenKind::kStar)) {
    Advance();
    item.is_star = true;
    return item;
  }
  // t.* form.
  if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kDot &&
      Peek(2).kind == TokenKind::kStar) {
    item.is_star = true;
    item.star_qualifier = Advance().text;
    Advance();  // '.'
    Advance();  // '*'
    return item;
  }
  FGAC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (MatchKeyword("as")) {
    if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected alias");
    item.alias = Advance().text;
  } else if (Check(TokenKind::kIdentifier)) {
    item.alias = Advance().text;
  }
  return item;
}

Result<TableRefPtr> Parser::ParseTableRef() {
  FGAC_ASSIGN_OR_RETURN(TableRefPtr left, ParseTablePrimary());
  while (CheckKeyword("join") || CheckKeyword("inner")) {
    MatchKeyword("inner");
    FGAC_RETURN_NOT_OK(ExpectKeyword("join"));
    FGAC_ASSIGN_OR_RETURN(TableRefPtr right, ParseTablePrimary());
    FGAC_RETURN_NOT_OK(ExpectKeyword("on"));
    FGAC_ASSIGN_OR_RETURN(ExprPtr on, ParseExpr());
    left = MakeJoin(std::move(left), std::move(right), std::move(on));
  }
  return left;
}

Result<TableRefPtr> Parser::ParseTablePrimary() {
  if (Match(TokenKind::kLParen)) {
    if (CheckKeyword("select")) {
      return Status::NotImplemented(
          "subqueries in FROM are outside the supported subset "
          "(the paper assumes no nested subqueries, Section 5)");
    }
    FGAC_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRef());
    FGAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return ref;
  }
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected table name");
  std::string name = Advance().text;
  std::string alias;
  if (MatchKeyword("as")) {
    if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected alias");
    alias = Advance().text;
  } else if (Check(TokenKind::kIdentifier)) {
    alias = Advance().text;
  }
  return MakeNamedTable(std::move(name), std::move(alias));
}

Result<std::vector<std::string>> Parser::ParseColumnNameList() {
  FGAC_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
  std::vector<std::string> cols;
  do {
    if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected column name");
    cols.push_back(Advance().text);
  } while (Match(TokenKind::kComma));
  FGAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
  return cols;
}

Result<TypeName> Parser::ParseTypeName() {
  if (MatchKeyword("int")) return TypeName::kInt;
  if (MatchKeyword("bigint")) return TypeName::kBigInt;
  if (MatchKeyword("double")) return TypeName::kDouble;
  if (MatchKeyword("boolean")) return TypeName::kBoolean;
  if (MatchKeyword("varchar")) {
    // Optional length, ignored (all strings are unbounded).
    if (Match(TokenKind::kLParen)) {
      if (!Check(TokenKind::kIntLit)) return ErrorHere("expected length");
      Advance();
      FGAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    }
    return TypeName::kVarchar;
  }
  return ErrorHere("expected a type name");
}

Result<StmtPtr> Parser::Create() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("create"));
  if (CheckKeyword("table")) return CreateTable();
  if (CheckKeyword("authorization")) {
    Advance();
    FGAC_RETURN_NOT_OK(ExpectKeyword("view"));
    return CreateView(/*authorization=*/true);
  }
  if (CheckKeyword("view")) {
    Advance();
    return CreateView(/*authorization=*/false);
  }
  if (CheckKeyword("inclusion")) return CreateInclusion();
  return ErrorHere("expected TABLE, VIEW, AUTHORIZATION VIEW or INCLUSION");
}

Result<StmtPtr> Parser::CreateTable() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("table"));
  auto stmt = std::make_unique<CreateTableStmt>();
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected table name");
  stmt->name = Advance().text;
  FGAC_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
  do {
    if (CheckKeyword("primary")) {
      Advance();
      FGAC_RETURN_NOT_OK(ExpectKeyword("key"));
      FGAC_ASSIGN_OR_RETURN(stmt->primary_key, ParseColumnNameList());
      continue;
    }
    if (CheckKeyword("foreign")) {
      Advance();
      FGAC_RETURN_NOT_OK(ExpectKeyword("key"));
      ForeignKeyClause fk;
      FGAC_ASSIGN_OR_RETURN(fk.columns, ParseColumnNameList());
      FGAC_RETURN_NOT_OK(ExpectKeyword("references"));
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorHere("expected referenced table name");
      }
      fk.ref_table = Advance().text;
      if (Check(TokenKind::kLParen)) {
        FGAC_ASSIGN_OR_RETURN(fk.ref_columns, ParseColumnNameList());
      }
      stmt->foreign_keys.push_back(std::move(fk));
      continue;
    }
    ColumnDef col;
    if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected column name");
    col.name = Advance().text;
    FGAC_ASSIGN_OR_RETURN(col.type, ParseTypeName());
    while (true) {
      if (MatchKeyword("not")) {
        FGAC_RETURN_NOT_OK(ExpectKeyword("null"));
        col.not_null = true;
      } else if (CheckKeyword("primary")) {
        Advance();
        FGAC_RETURN_NOT_OK(ExpectKeyword("key"));
        stmt->primary_key.push_back(col.name);
        col.not_null = true;
      } else if (MatchKeyword("references")) {
        ForeignKeyClause fk;
        fk.columns.push_back(col.name);
        if (!Check(TokenKind::kIdentifier)) {
          return ErrorHere("expected referenced table name");
        }
        fk.ref_table = Advance().text;
        if (Check(TokenKind::kLParen)) {
          FGAC_ASSIGN_OR_RETURN(fk.ref_columns, ParseColumnNameList());
        }
        stmt->foreign_keys.push_back(std::move(fk));
      } else {
        break;
      }
    }
    stmt->columns.push_back(std::move(col));
  } while (Match(TokenKind::kComma));
  FGAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::CreateView(bool authorization) {
  auto stmt = std::make_unique<CreateViewStmt>();
  stmt->authorization = authorization;
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected view name");
  stmt->name = Advance().text;
  FGAC_RETURN_NOT_OK(ExpectKeyword("as"));
  FGAC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, Select());
  stmt->select = std::shared_ptr<const SelectStmt>(sel.release());
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::CreateInclusion() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("inclusion"));
  FGAC_RETURN_NOT_OK(ExpectKeyword("dependency"));
  auto stmt = std::make_unique<CreateInclusionStmt>();
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected constraint name");
  stmt->name = Advance().text;
  FGAC_RETURN_NOT_OK(ExpectKeyword("on"));
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected source table");
  stmt->src_table = Advance().text;
  FGAC_ASSIGN_OR_RETURN(stmt->src_columns, ParseColumnNameList());
  if (MatchKeyword("where")) {
    FGAC_ASSIGN_OR_RETURN(stmt->src_where, ParseExpr());
  }
  FGAC_RETURN_NOT_OK(ExpectKeyword("references"));
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected target table");
  stmt->dst_table = Advance().text;
  FGAC_ASSIGN_OR_RETURN(stmt->dst_columns, ParseColumnNameList());
  if (stmt->src_columns.size() != stmt->dst_columns.size()) {
    return Status::ParseError(
        "inclusion dependency column lists must have equal length");
  }
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::Insert() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("insert"));
  FGAC_RETURN_NOT_OK(ExpectKeyword("into"));
  auto stmt = std::make_unique<InsertStmt>();
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected table name");
  stmt->table = Advance().text;
  if (Check(TokenKind::kLParen)) {
    FGAC_ASSIGN_OR_RETURN(stmt->columns, ParseColumnNameList());
  }
  FGAC_RETURN_NOT_OK(ExpectKeyword("values"));
  do {
    FGAC_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    std::vector<ExprPtr> row;
    do {
      FGAC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (Match(TokenKind::kComma));
    FGAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    stmt->rows.push_back(std::move(row));
  } while (Match(TokenKind::kComma));
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::Update() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("update"));
  auto stmt = std::make_unique<UpdateStmt>();
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected table name");
  stmt->table = Advance().text;
  FGAC_RETURN_NOT_OK(ExpectKeyword("set"));
  do {
    if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected column name");
    std::string col = Advance().text;
    FGAC_RETURN_NOT_OK(Expect(TokenKind::kEq, "'='"));
    FGAC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt->assignments.emplace_back(std::move(col), std::move(e));
  } while (Match(TokenKind::kComma));
  if (MatchKeyword("where")) {
    FGAC_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::Delete() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("delete"));
  FGAC_RETURN_NOT_OK(ExpectKeyword("from"));
  auto stmt = std::make_unique<DeleteStmt>();
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected table name");
  stmt->table = Advance().text;
  if (MatchKeyword("where")) {
    FGAC_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::Grant() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("grant"));
  FGAC_RETURN_NOT_OK(ExpectKeyword("select"));
  FGAC_RETURN_NOT_OK(ExpectKeyword("on"));
  auto stmt = std::make_unique<GrantStmt>();
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected object name");
  stmt->object = Advance().text;
  FGAC_RETURN_NOT_OK(ExpectKeyword("to"));
  // Principals may be numeric user-ids (the paper's students '11', '12').
  if (Check(TokenKind::kIdentifier) || Check(TokenKind::kIntLit) ||
      Check(TokenKind::kStringLit)) {
    stmt->grantee = Advance().text;
    return StmtPtr(stmt.release());
  }
  return ErrorHere("expected grantee");
}

Result<StmtPtr> Parser::Revoke() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("revoke"));
  FGAC_RETURN_NOT_OK(ExpectKeyword("select"));
  FGAC_RETURN_NOT_OK(ExpectKeyword("on"));
  auto stmt = std::make_unique<RevokeStmt>();
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected object name");
  stmt->object = Advance().text;
  FGAC_RETURN_NOT_OK(ExpectKeyword("from"));
  if (Check(TokenKind::kIdentifier) || Check(TokenKind::kIntLit) ||
      Check(TokenKind::kStringLit)) {
    stmt->grantee = Advance().text;
    return StmtPtr(stmt.release());
  }
  return ErrorHere("expected grantee");
}

Result<StmtPtr> Parser::Explain() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("explain"));
  auto stmt = std::make_unique<ExplainStmt>();
  if (MatchKeyword("analyze")) stmt->analyze = true;
  if (CheckKeyword("execute")) {
    // EXPLAIN [ANALYZE] EXECUTE name(args): explain a prepared statement
    // (resolved against the connection session's registry at run time).
    FGAC_ASSIGN_OR_RETURN(StmtPtr exec, ExecutePrepared());
    stmt->execute = std::shared_ptr<const ExecuteStmt>(
        static_cast<const ExecuteStmt*>(exec.release()));
    return StmtPtr(stmt.release());
  }
  FGAC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, Select());
  stmt->select = std::shared_ptr<const SelectStmt>(sel.release());
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::Prepare() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("prepare"));
  auto stmt = std::make_unique<PrepareStmt>();
  if (!Check(TokenKind::kIdentifier)) {
    return ErrorHere("expected prepared-statement name");
  }
  stmt->name = Advance().text;
  FGAC_RETURN_NOT_OK(ExpectKeyword("as"));
  FGAC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, Select());
  stmt->select = std::shared_ptr<const SelectStmt>(sel.release());
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::ExecutePrepared() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("execute"));
  auto stmt = std::make_unique<ExecuteStmt>();
  if (!Check(TokenKind::kIdentifier)) {
    return ErrorHere("expected prepared-statement name");
  }
  stmt->name = Advance().text;
  if (Match(TokenKind::kLParen)) {
    if (!Check(TokenKind::kRParen)) {
      do {
        FGAC_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        stmt->args.push_back(std::move(arg));
      } while (Match(TokenKind::kComma));
    }
    FGAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
  }
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::Deallocate() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("deallocate"));
  auto stmt = std::make_unique<DeallocateStmt>();
  if (MatchKeyword("all")) {
    return StmtPtr(stmt.release());  // name stays empty = ALL
  }
  if (!Check(TokenKind::kIdentifier)) {
    return ErrorHere("expected prepared-statement name or ALL");
  }
  stmt->name = Advance().text;
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::Authorize() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("authorize"));
  auto stmt = std::make_unique<AuthorizeStmt>();
  if (MatchKeyword("insert")) {
    stmt->op = AuthorizeStmt::Op::kInsert;
  } else if (MatchKeyword("update")) {
    stmt->op = AuthorizeStmt::Op::kUpdate;
  } else if (MatchKeyword("delete")) {
    stmt->op = AuthorizeStmt::Op::kDelete;
  } else {
    return ErrorHere("expected INSERT, UPDATE or DELETE");
  }
  FGAC_RETURN_NOT_OK(ExpectKeyword("on"));
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected table name");
  stmt->table = Advance().text;
  if (stmt->op == AuthorizeStmt::Op::kUpdate && Check(TokenKind::kLParen)) {
    FGAC_ASSIGN_OR_RETURN(stmt->columns, ParseColumnNameList());
  }
  if (MatchKeyword("where")) {
    FGAC_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (MatchKeyword("to")) {
    if (!Check(TokenKind::kIdentifier) && !Check(TokenKind::kIntLit) &&
        !Check(TokenKind::kStringLit)) {
      return ErrorHere("expected grantee");
    }
    stmt->grantee = Advance().text;
  }
  return StmtPtr(stmt.release());
}

Result<StmtPtr> Parser::Drop() {
  FGAC_RETURN_NOT_OK(ExpectKeyword("drop"));
  auto stmt = std::make_unique<DropStmt>();
  if (MatchKeyword("table")) {
    stmt->what = DropStmt::What::kTable;
  } else if (MatchKeyword("view")) {
    stmt->what = DropStmt::What::kView;
  } else {
    return ErrorHere("expected TABLE or VIEW");
  }
  if (!Check(TokenKind::kIdentifier)) return ErrorHere("expected name");
  stmt->name = Advance().text;
  return StmtPtr(stmt.release());
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  FGAC_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("or")) {
    FGAC_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = MakeBinary(BinOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  FGAC_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("and")) {
    FGAC_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = MakeBinary(BinOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("not")) {
    FGAC_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return MakeUnary(UnOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  FGAC_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // IS [NOT] NULL.
  if (CheckKeyword("is")) {
    Advance();
    bool negated = MatchKeyword("not");
    FGAC_RETURN_NOT_OK(ExpectKeyword("null"));
    return MakeUnary(negated ? UnOp::kIsNotNull : UnOp::kIsNull,
                     std::move(left));
  }
  // [NOT] IN / BETWEEN / LIKE.
  bool negated = false;
  if (CheckKeyword("not") &&
      (CheckKeyword("in", 1) || CheckKeyword("between", 1) ||
       CheckKeyword("like", 1))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("in")) {
    FGAC_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    if (CheckKeyword("select")) {
      return Status::NotImplemented(
          "IN (SELECT ...) subqueries are outside the supported subset");
    }
    std::vector<ExprPtr> list;
    do {
      FGAC_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
      list.push_back(std::move(e));
    } while (Match(TokenKind::kComma));
    FGAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return MakeInList(std::move(left), std::move(list), negated);
  }
  if (MatchKeyword("between")) {
    FGAC_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    FGAC_RETURN_NOT_OK(ExpectKeyword("and"));
    FGAC_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    return MakeBetween(std::move(left), std::move(lo), std::move(hi), negated);
  }
  if (MatchKeyword("like")) {
    FGAC_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    ExprPtr like = MakeBinary(BinOp::kLike, std::move(left), std::move(pattern));
    if (negated) return MakeUnary(UnOp::kNot, std::move(like));
    return like;
  }

  BinOp op;
  switch (Peek().kind) {
    case TokenKind::kEq: op = BinOp::kEq; break;
    case TokenKind::kNe: op = BinOp::kNe; break;
    case TokenKind::kLt: op = BinOp::kLt; break;
    case TokenKind::kLe: op = BinOp::kLe; break;
    case TokenKind::kGt: op = BinOp::kGt; break;
    case TokenKind::kGe: op = BinOp::kGe; break;
    default:
      return left;
  }
  Advance();
  FGAC_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
  return MakeBinary(op, std::move(left), std::move(right));
}

Result<ExprPtr> Parser::ParseAdditive() {
  FGAC_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
    BinOp op = Check(TokenKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
    Advance();
    FGAC_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  FGAC_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
         Check(TokenKind::kPercent)) {
    BinOp op = Check(TokenKind::kStar)
                   ? BinOp::kMul
                   : (Check(TokenKind::kSlash) ? BinOp::kDiv : BinOp::kMod);
    Advance();
    FGAC_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenKind::kMinus)) {
    FGAC_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    // Fold negation of numeric literals directly.
    if (operand->kind == ExprKind::kLiteral && operand->value.is_int()) {
      return MakeLiteral(Value::Int(-operand->value.int_value()));
    }
    if (operand->kind == ExprKind::kLiteral && operand->value.is_double()) {
      return MakeLiteral(Value::Double(-operand->value.double_value()));
    }
    return MakeUnary(UnOp::kNeg, std::move(operand));
  }
  Match(TokenKind::kPlus);
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kIntLit:
      Advance();
      return MakeLiteral(Value::Int(t.int_value));
    case TokenKind::kDoubleLit:
      Advance();
      return MakeLiteral(Value::Double(t.double_value));
    case TokenKind::kStringLit:
      Advance();
      return MakeLiteral(Value::String(t.text));
    case TokenKind::kParam:
      Advance();
      return MakeParam(t.text);
    case TokenKind::kAccessParam:
      Advance();
      return MakeAccessParam(t.text);
    case TokenKind::kLParen: {
      Advance();
      if (CheckKeyword("select")) {
        return Status::NotImplemented(
            "scalar subqueries are outside the supported subset");
      }
      FGAC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      FGAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return e;
    }
    case TokenKind::kKeyword: {
      if (t.text == "null") {
        Advance();
        return MakeLiteral(Value::Null());
      }
      if (t.text == "true") {
        Advance();
        return MakeLiteral(Value::Bool(true));
      }
      if (t.text == "false") {
        Advance();
        return MakeLiteral(Value::Bool(false));
      }
      if (IsFuncKeyword(t.text)) {
        std::string name = Advance().text;
        FGAC_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'(' after function"));
        bool distinct_arg = false;
        bool star_arg = false;
        std::vector<ExprPtr> args;
        if (Match(TokenKind::kStar)) {
          star_arg = true;
        } else {
          if (MatchKeyword("distinct")) distinct_arg = true;
          do {
            FGAC_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
          } while (Match(TokenKind::kComma));
        }
        FGAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        if (star_arg && name != "count") {
          return Status::ParseError("'*' argument is only valid for COUNT");
        }
        return MakeFuncCall(std::move(name), std::move(args), distinct_arg,
                            star_arg);
      }
      return ErrorHere("unexpected keyword in expression");
    }
    case TokenKind::kIdentifier: {
      std::string first = Advance().text;
      if (Match(TokenKind::kDot)) {
        if (Check(TokenKind::kIdentifier)) {
          std::string second = Advance().text;
          return MakeColumnRef(std::move(first), std::move(second));
        }
        return ErrorHere("expected column name after '.'");
      }
      return MakeColumnRef("", std::move(first));
    }
    default:
      return ErrorHere("expected an expression");
  }
}

}  // namespace fgac::sql
