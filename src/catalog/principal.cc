#include "catalog/principal.h"

// Principal is a plain data carrier; grant resolution lives in
// catalog/catalog.cc (Catalog::AvailableViews).
