#ifndef FGAC_CATALOG_SCHEMA_H_
#define FGAC_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/type.h"

namespace fgac::catalog {

/// One column of a base table.
struct Column {
  std::string name;
  TypeId type = TypeId::kInt64;
  bool not_null = false;
};

/// Schema of a base table: name, columns, primary-key column indices.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of `name` (case-insensitively pre-lowercased), or nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const;

  const std::vector<size_t>& primary_key() const { return primary_key_; }
  void set_primary_key(std::vector<size_t> idx) { primary_key_ = std::move(idx); }
  bool has_primary_key() const { return !primary_key_.empty(); }

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<size_t> primary_key_;
};

}  // namespace fgac::catalog

#endif  // FGAC_CATALOG_SCHEMA_H_
