#ifndef FGAC_CATALOG_VIEW_DEF_H_
#define FGAC_CATALOG_VIEW_DEF_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace fgac::catalog {

/// A stored view definition. Authorization views (paper Section 2) carry
/// `$` parameters (fixed per access context, e.g. $user-id) and `$$`
/// parameters (access-pattern parameters bindable to any value, Section 6).
struct ViewDefinition {
  std::string name;
  /// True for CREATE AUTHORIZATION VIEW; such views participate in validity
  /// inference when granted. False for ordinary relational views, which are
  /// macro-expanded into queries at binding time.
  bool is_authorization = false;
  std::shared_ptr<const sql::SelectStmt> select;
  /// Distinct `$` parameter names appearing in the definition.
  std::vector<std::string> parameters;
  /// Distinct `$$` parameter names appearing in the definition.
  std::vector<std::string> access_parameters;

  bool is_parameterized() const { return !parameters.empty(); }
  bool is_access_pattern() const { return !access_parameters.empty(); }
};

}  // namespace fgac::catalog

#endif  // FGAC_CATALOG_VIEW_DEF_H_
