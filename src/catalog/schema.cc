#include "catalog/schema.h"

namespace fgac::catalog {

std::optional<size_t> TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

}  // namespace fgac::catalog
