#ifndef FGAC_CATALOG_CATALOG_H_
#define FGAC_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/constraint.h"
#include "catalog/principal.h"
#include "catalog/schema.h"
#include "catalog/view_def.h"
#include "common/result.h"

namespace fgac::catalog {

/// The system catalog: table schemas, view definitions, integrity
/// constraints, principals and grants, Truman-model policy views. All names
/// are stored lowercased (the lexer lowercases identifiers).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // --- Tables -------------------------------------------------------------
  Status AddTable(TableSchema schema);
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  const TableSchema* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // --- Views --------------------------------------------------------------
  Status AddView(ViewDefinition view);
  Status DropView(const std::string& name);
  bool HasView(const std::string& name) const;
  const ViewDefinition* GetView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  // --- Integrity constraints ----------------------------------------------
  Status AddConstraint(InclusionDependency dep);
  const std::vector<InclusionDependency>& constraints() const {
    return constraints_;
  }
  /// All constraints whose source table is `table`.
  std::vector<const InclusionDependency*> ConstraintsFrom(
      const std::string& table) const;

  // --- Principals and grants ----------------------------------------------
  /// Creates the principal if absent and returns it.
  Principal* GetOrCreatePrincipal(const std::string& name);
  const Principal* GetPrincipal(const std::string& name) const;

  /// Grants SELECT on `view_name` to `principal` (created if absent).
  Status GrantView(const std::string& view_name, const std::string& principal);

  /// Revokes a direct grant of `view_name` from `principal`. Grants held
  /// through roles are untouched (revoke them from the role).
  Status RevokeView(const std::string& view_name, const std::string& principal);

  /// Adds `role` to `principal`'s role set.
  Status GrantRole(const std::string& role, const std::string& principal);

  /// Resolves the full set of authorization views available to `user`:
  /// direct grants plus grants via (transitively held) roles. This models
  /// delegation composing outside the inference engine (paper Section 6).
  std::vector<const ViewDefinition*> AvailableViews(
      const std::string& user) const;

  /// Update authorizations applicable to `user` (direct + via roles).
  std::vector<const UpdateAuthorization*> AvailableUpdateAuthorizations(
      const std::string& user) const;

  // --- Truman policy (Section 3) -------------------------------------------
  /// Registers `view_name` as the Truman-model replacement for `table`:
  /// under Truman enforcement every reference to `table` is substituted by
  /// this (parameterized) view.
  Status SetTrumanView(const std::string& table, const std::string& view_name);
  /// Returns the Truman view name for `table`, or empty string if none.
  const std::string& TrumanViewFor(const std::string& table) const;

 private:
  void CollectRolesInto(const std::string& name,
                        std::vector<const Principal*>* out) const;

  std::map<std::string, TableSchema> tables_;
  std::map<std::string, ViewDefinition> views_;
  std::vector<InclusionDependency> constraints_;
  std::map<std::string, Principal> principals_;
  std::map<std::string, std::string> truman_views_;
};

}  // namespace fgac::catalog

#endif  // FGAC_CATALOG_CATALOG_H_
