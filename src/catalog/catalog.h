#ifndef FGAC_CATALOG_CATALOG_H_
#define FGAC_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/constraint.h"
#include "catalog/principal.h"
#include "catalog/schema.h"
#include "catalog/view_def.h"
#include "common/result.h"

namespace fgac::catalog {

/// The system catalog: table schemas, view definitions, integrity
/// constraints, principals and grants, Truman-model policy views. All names
/// are stored lowercased (the lexer lowercases identifiers).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // --- Tables -------------------------------------------------------------
  Status AddTable(TableSchema schema);
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  const TableSchema* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // --- Views --------------------------------------------------------------
  Status AddView(ViewDefinition view);
  Status DropView(const std::string& name);
  bool HasView(const std::string& name) const;
  const ViewDefinition* GetView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  // --- Integrity constraints ----------------------------------------------
  Status AddConstraint(InclusionDependency dep);
  const std::vector<InclusionDependency>& constraints() const {
    return constraints_;
  }
  /// All constraints whose source table is `table`.
  std::vector<const InclusionDependency*> ConstraintsFrom(
      const std::string& table) const;

  // --- Principals and grants ----------------------------------------------
  /// Creates the principal if absent and returns it.
  Principal* GetOrCreatePrincipal(const std::string& name);
  const Principal* GetPrincipal(const std::string& name) const;

  /// Grants SELECT on `view_name` to `principal` (created if absent).
  Status GrantView(const std::string& view_name, const std::string& principal);

  /// Revokes a direct grant of `view_name` from `principal`. Grants held
  /// through roles are untouched (revoke them from the role).
  Status RevokeView(const std::string& view_name, const std::string& principal);

  /// Adds `role` to `principal`'s role set.
  Status GrantRole(const std::string& role, const std::string& principal);

  /// Resolves the full set of authorization views available to `user`:
  /// direct grants plus grants via (transitively held) roles. This models
  /// delegation composing outside the inference engine (paper Section 6).
  std::vector<const ViewDefinition*> AvailableViews(
      const std::string& user) const;

  /// Update authorizations applicable to `user` (direct + via roles).
  std::vector<const UpdateAuthorization*> AvailableUpdateAuthorizations(
      const std::string& user) const;

  // --- Truman policy (Section 3) -------------------------------------------
  /// Registers `view_name` as the Truman-model replacement for `table`:
  /// under Truman enforcement every reference to `table` is substituted by
  /// this (parameterized) view.
  Status SetTrumanView(const std::string& table, const std::string& view_name);
  /// Returns the Truman view name for `table`, or empty string if none.
  const std::string& TrumanViewFor(const std::string& table) const;

  // --- Policy epoch --------------------------------------------------------
  /// Monotonic counter covering every authorization-relevant mutation:
  /// view DDL, grants/revokes, role membership, Truman-view bindings and
  /// principal creation. Cached enforcement decisions (validity verdicts,
  /// rewritten plans) carry the epoch they were computed under and are
  /// discarded on mismatch — fail-closed, so a verdict can never outlive
  /// the policy that produced it. Distinct from the Database's
  /// catalog_version, which also advances on table DDL that cannot change
  /// an authorization decision by itself.
  uint64_t policy_epoch() const {
    return policy_epoch_.load(std::memory_order_acquire);
  }
  /// Called by every mutator above; public so engine paths that edit
  /// principals through GetOrCreatePrincipal() (e.g. AUTHORIZE) can record
  /// the change.
  void BumpPolicyEpoch() {
    policy_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  void CollectRolesInto(const std::string& name,
                        std::vector<const Principal*>* out) const;

  std::map<std::string, TableSchema> tables_;
  std::map<std::string, ViewDefinition> views_;
  std::vector<InclusionDependency> constraints_;
  std::map<std::string, Principal> principals_;
  std::map<std::string, std::string> truman_views_;
  std::atomic<uint64_t> policy_epoch_{1};
};

}  // namespace fgac::catalog

#endif  // FGAC_CATALOG_CATALOG_H_
