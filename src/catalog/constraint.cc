#include "catalog/constraint.h"

// InclusionDependency is a plain data carrier; logic that consumes it lives
// in optimizer/implication.cc and core/validity.cc.
