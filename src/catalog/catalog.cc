#include "catalog/catalog.h"

#include <set>

namespace fgac::catalog {

Status Catalog::AddTable(TableSchema schema) {
  if (HasTable(schema.name()) || HasView(schema.name())) {
    return Status::CatalogError("relation '" + schema.name() +
                                "' already exists");
  }
  std::string name = schema.name();
  tables_.emplace(std::move(name), std::move(schema));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::CatalogError("table '" + name + "' does not exist");
  }
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const TableSchema* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, schema] : tables_) out.push_back(name);
  return out;
}

Status Catalog::AddView(ViewDefinition view) {
  if (HasTable(view.name) || HasView(view.name)) {
    return Status::CatalogError("relation '" + view.name + "' already exists");
  }
  std::string name = view.name;
  views_.emplace(std::move(name), std::move(view));
  BumpPolicyEpoch();
  return Status::OK();
}

Status Catalog::DropView(const std::string& name) {
  if (views_.erase(name) == 0) {
    return Status::CatalogError("view '" + name + "' does not exist");
  }
  BumpPolicyEpoch();
  return Status::OK();
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(name) > 0;
}

const ViewDefinition* Catalog::GetView(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [name, view] : views_) out.push_back(name);
  return out;
}

Status Catalog::AddConstraint(InclusionDependency dep) {
  if (!HasTable(dep.src_table)) {
    return Status::CatalogError("constraint source table '" + dep.src_table +
                                "' does not exist");
  }
  if (!HasTable(dep.dst_table)) {
    return Status::CatalogError("constraint target table '" + dep.dst_table +
                                "' does not exist");
  }
  const TableSchema* src = GetTable(dep.src_table);
  const TableSchema* dst = GetTable(dep.dst_table);
  for (const std::string& c : dep.src_columns) {
    if (!src->FindColumn(c).has_value()) {
      return Status::CatalogError("constraint column '" + c +
                                  "' not in table '" + dep.src_table + "'");
    }
  }
  for (const std::string& c : dep.dst_columns) {
    if (!dst->FindColumn(c).has_value()) {
      return Status::CatalogError("constraint column '" + c +
                                  "' not in table '" + dep.dst_table + "'");
    }
  }
  constraints_.push_back(std::move(dep));
  return Status::OK();
}

std::vector<const InclusionDependency*> Catalog::ConstraintsFrom(
    const std::string& table) const {
  std::vector<const InclusionDependency*> out;
  for (const InclusionDependency& dep : constraints_) {
    if (dep.src_table == table) out.push_back(&dep);
  }
  return out;
}

Principal* Catalog::GetOrCreatePrincipal(const std::string& name) {
  auto it = principals_.find(name);
  if (it == principals_.end()) {
    Principal p;
    p.name = name;
    it = principals_.emplace(name, std::move(p)).first;
    BumpPolicyEpoch();
  }
  return &it->second;
}

const Principal* Catalog::GetPrincipal(const std::string& name) const {
  auto it = principals_.find(name);
  return it == principals_.end() ? nullptr : &it->second;
}

Status Catalog::GrantView(const std::string& view_name,
                          const std::string& principal) {
  const ViewDefinition* view = GetView(view_name);
  if (view == nullptr) {
    return Status::CatalogError("view '" + view_name + "' does not exist");
  }
  GetOrCreatePrincipal(principal)->granted_views.insert(view_name);
  BumpPolicyEpoch();
  return Status::OK();
}

Status Catalog::RevokeView(const std::string& view_name,
                           const std::string& principal) {
  Principal* p = GetOrCreatePrincipal(principal);
  if (p->granted_views.erase(view_name) == 0) {
    return Status::CatalogError("'" + principal + "' holds no direct grant on '" +
                                view_name + "'");
  }
  BumpPolicyEpoch();
  return Status::OK();
}

Status Catalog::GrantRole(const std::string& role,
                          const std::string& principal) {
  Principal* r = GetOrCreatePrincipal(role);
  r->is_role = true;
  GetOrCreatePrincipal(principal)->roles.insert(role);
  BumpPolicyEpoch();
  return Status::OK();
}

void Catalog::CollectRolesInto(const std::string& name,
                               std::vector<const Principal*>* out) const {
  const Principal* p = GetPrincipal(name);
  if (p == nullptr) return;
  for (const Principal* seen : *out) {
    if (seen == p) return;  // cycle / duplicate guard
  }
  out->push_back(p);
  for (const std::string& role : p->roles) CollectRolesInto(role, out);
}

std::vector<const ViewDefinition*> Catalog::AvailableViews(
    const std::string& user) const {
  std::vector<const Principal*> principals;
  CollectRolesInto(user, &principals);
  CollectRolesInto("public", &principals);
  std::set<std::string> names;
  for (const Principal* p : principals) {
    names.insert(p->granted_views.begin(), p->granted_views.end());
  }
  std::vector<const ViewDefinition*> out;
  for (const std::string& name : names) {
    const ViewDefinition* v = GetView(name);
    if (v != nullptr) out.push_back(v);
  }
  return out;
}

std::vector<const UpdateAuthorization*> Catalog::AvailableUpdateAuthorizations(
    const std::string& user) const {
  std::vector<const Principal*> principals;
  CollectRolesInto(user, &principals);
  CollectRolesInto("public", &principals);
  std::vector<const UpdateAuthorization*> out;
  for (const Principal* p : principals) {
    for (const UpdateAuthorization& ua : p->update_authorizations) {
      out.push_back(&ua);
    }
  }
  return out;
}

Status Catalog::SetTrumanView(const std::string& table,
                              const std::string& view_name) {
  if (!HasTable(table)) {
    return Status::CatalogError("table '" + table + "' does not exist");
  }
  if (!HasView(view_name)) {
    return Status::CatalogError("view '" + view_name + "' does not exist");
  }
  truman_views_[table] = view_name;
  BumpPolicyEpoch();
  return Status::OK();
}

const std::string& Catalog::TrumanViewFor(const std::string& table) const {
  static const std::string kEmpty;
  auto it = truman_views_.find(table);
  return it == truman_views_.end() ? kEmpty : it->second;
}

}  // namespace fgac::catalog
