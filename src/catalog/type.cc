#include "catalog/type.h"

namespace fgac::catalog {

TypeId TypeFromSql(sql::TypeName name) {
  switch (name) {
    case sql::TypeName::kInt:
    case sql::TypeName::kBigInt:
      return TypeId::kInt64;
    case sql::TypeName::kDouble:
      return TypeId::kDouble;
    case sql::TypeName::kVarchar:
      return TypeId::kString;
    case sql::TypeName::kBoolean:
      return TypeId::kBool;
  }
  return TypeId::kInt64;
}

const char* TypeIdName(TypeId type) {
  switch (type) {
    case TypeId::kInt64: return "BIGINT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kString: return "VARCHAR";
    case TypeId::kBool: return "BOOLEAN";
  }
  return "?";
}

bool ValueFitsType(const Value& v, TypeId type) {
  if (v.is_null()) return true;
  switch (type) {
    case TypeId::kInt64: return v.is_int();
    case TypeId::kDouble: return v.is_numeric();
    case TypeId::kString: return v.is_string();
    case TypeId::kBool: return v.is_bool();
  }
  return false;
}

Value CoerceToType(const Value& v, TypeId type) {
  if (type == TypeId::kDouble && v.is_int()) {
    return Value::Double(static_cast<double>(v.int_value()));
  }
  return v;
}

}  // namespace fgac::catalog
