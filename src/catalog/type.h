#ifndef FGAC_CATALOG_TYPE_H_
#define FGAC_CATALOG_TYPE_H_

#include <string>

#include "common/value.h"
#include "sql/ast.h"

namespace fgac::catalog {

/// Storage types. BIGINT/INT collapse to kInt64; VARCHAR to kString.
enum class TypeId { kInt64, kDouble, kString, kBool };

/// Maps a parsed SQL type name to a storage type.
TypeId TypeFromSql(sql::TypeName name);

/// Human-readable type name ("BIGINT", "DOUBLE", ...).
const char* TypeIdName(TypeId type);

/// True if `v` may be stored in a column of type `type` (NULL always fits;
/// ints coerce into double columns).
bool ValueFitsType(const Value& v, TypeId type);

/// Coerces `v` for storage in `type` (int -> double widening); returns the
/// value unchanged when no coercion applies.
Value CoerceToType(const Value& v, TypeId type);

}  // namespace fgac::catalog

#endif  // FGAC_CATALOG_TYPE_H_
