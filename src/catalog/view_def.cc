#include "catalog/view_def.h"

// ViewDefinition is a plain data carrier; instantiation logic lives in
// core/auth_view.cc.
