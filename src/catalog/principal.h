#ifndef FGAC_CATALOG_PRINCIPAL_H_
#define FGAC_CATALOG_PRINCIPAL_H_

#include <set>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace fgac::catalog {

/// An update-authorization rule (paper Section 4.4), e.g.
///   AUTHORIZE INSERT ON registered WHERE registered.student-id = $user-id.
/// The predicate may reference $parameters and, for UPDATE/DELETE, the
/// old()/new() tuple images.
struct UpdateAuthorization {
  enum class Op { kInsert, kUpdate, kDelete };
  Op op = Op::kInsert;
  std::string table;
  /// UPDATE only: columns this rule permits updating (empty = all).
  std::vector<std::string> columns;
  /// Nullable = unconditionally authorized.
  sql::ExprPtr predicate;
};

/// A database principal. Users and roles share this representation; a user
/// may be granted roles, and authorization views granted to a role flow to
/// its members (paper Section 7 notes RBAC composes with authorization
/// views this way).
struct Principal {
  std::string name;
  bool is_role = false;
  /// Names of authorization views granted directly (Section 4.1).
  std::set<std::string> granted_views;
  /// Roles this principal is a member of.
  std::set<std::string> roles;
  /// Update authorizations attached to this principal.
  std::vector<UpdateAuthorization> update_authorizations;
};

}  // namespace fgac::catalog

#endif  // FGAC_CATALOG_PRINCIPAL_H_
