#ifndef FGAC_CATALOG_CONSTRAINT_H_
#define FGAC_CATALOG_CONSTRAINT_H_

#include <string>
#include <vector>

#include "sql/ast.h"

namespace fgac::catalog {

/// An inclusion dependency:
///   every tuple of `src_table` satisfying `src_predicate` has at least one
///   matching tuple in `dst_table` with src_columns[i] = dst_columns[i].
///
/// Foreign keys are stored as inclusion dependencies with kind kForeignKey
/// (additionally implying the destination columns are a key). Declared
/// inclusion dependencies (paper Section 5.3, e.g. "every full-time student
/// is registered for at least one course") use kind kDeclared and may carry
/// a source-side predicate.
///
/// These constraints are the integrity-constraint input to inference rules
/// U3a/U3b/U3c: they are what justifies "for every tuple in the view core
/// there is a matching tuple in the view remainder".
struct InclusionDependency {
  enum class Kind { kForeignKey, kDeclared };

  std::string name;
  Kind kind = Kind::kDeclared;
  std::string src_table;
  std::vector<std::string> src_columns;
  /// Optional predicate restricting the source side (kDeclared only);
  /// column refs use bare column names or `src_table.column`.
  sql::ExprPtr src_predicate;
  std::string dst_table;
  std::vector<std::string> dst_columns;

  /// Whether the user is authorized to know this constraint exists. The
  /// paper (Section 4.2) requires that constraints invisible to the user
  /// must not be used in validity inference, lest acceptance of a query
  /// leak the constraint's existence. Defaults to visible.
  bool visible_to_users = true;
};

}  // namespace fgac::catalog

#endif  // FGAC_CATALOG_CONSTRAINT_H_
