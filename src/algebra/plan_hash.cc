#include "algebra/plan_hash.h"

#include <functional>

namespace fgac::algebra {

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

}  // namespace

uint64_t PlanFingerprint(const PlanPtr& plan) {
  if (plan == nullptr) return 0;
  uint64_t h = static_cast<uint64_t>(plan->kind) * 0x100000001b3ULL + 0x811c9dc5;
  switch (plan->kind) {
    case PlanKind::kGet:
      h = HashCombine(h, std::hash<std::string>()(plan->table));
      h = HashCombine(h, plan->get_columns.size());
      break;
    case PlanKind::kValues:
      h = HashCombine(h, plan->values_arity);
      for (const Row& r : plan->rows) h = HashCombine(h, RowHash()(r));
      break;
    case PlanKind::kSelect:
    case PlanKind::kJoin:
      for (const ScalarPtr& p : plan->predicates) {
        h = HashCombine(h, ScalarFingerprint(p));
      }
      break;
    case PlanKind::kProject:
      for (const ScalarPtr& e : plan->exprs) {
        h = HashCombine(h, ScalarFingerprint(e));
      }
      break;
    case PlanKind::kAggregate:
      for (const ScalarPtr& g : plan->group_by) {
        h = HashCombine(h, ScalarFingerprint(g));
      }
      h = HashCombine(h, 0xabcd);
      for (const AggExpr& a : plan->aggs) {
        h = HashCombine(h, AggExprFingerprint(a));
      }
      break;
    case PlanKind::kDistinct:
    case PlanKind::kUnionAll:
      break;
    case PlanKind::kSort:
      for (const SortItem& it : plan->sort_items) {
        h = HashCombine(h, ScalarFingerprint(it.expr) * (it.descending ? 3 : 1));
      }
      break;
    case PlanKind::kLimit:
      h = HashCombine(h, static_cast<uint64_t>(plan->limit));
      break;
  }
  for (const PlanPtr& c : plan->children) {
    h = HashCombine(h, PlanFingerprint(c));
  }
  return h;
}

bool PlanEquals(const PlanPtr& a, const PlanPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->children.size() != b->children.size()) {
    return false;
  }
  switch (a->kind) {
    case PlanKind::kGet:
      if (a->table != b->table ||
          a->get_columns.size() != b->get_columns.size()) {
        return false;
      }
      break;
    case PlanKind::kValues: {
      if (a->values_arity != b->values_arity || a->rows.size() != b->rows.size())
        return false;
      RowEq eq;
      for (size_t i = 0; i < a->rows.size(); ++i) {
        if (!eq(a->rows[i], b->rows[i])) return false;
      }
      break;
    }
    case PlanKind::kSelect:
    case PlanKind::kJoin: {
      if (a->predicates.size() != b->predicates.size()) return false;
      for (size_t i = 0; i < a->predicates.size(); ++i) {
        if (!ScalarEquals(a->predicates[i], b->predicates[i])) return false;
      }
      break;
    }
    case PlanKind::kProject: {
      if (a->exprs.size() != b->exprs.size()) return false;
      for (size_t i = 0; i < a->exprs.size(); ++i) {
        if (!ScalarEquals(a->exprs[i], b->exprs[i])) return false;
      }
      break;
    }
    case PlanKind::kAggregate: {
      if (a->group_by.size() != b->group_by.size() ||
          a->aggs.size() != b->aggs.size()) {
        return false;
      }
      for (size_t i = 0; i < a->group_by.size(); ++i) {
        if (!ScalarEquals(a->group_by[i], b->group_by[i])) return false;
      }
      for (size_t i = 0; i < a->aggs.size(); ++i) {
        if (!AggExprEquals(a->aggs[i], b->aggs[i])) return false;
      }
      break;
    }
    case PlanKind::kDistinct:
    case PlanKind::kUnionAll:
      break;
    case PlanKind::kSort: {
      if (a->sort_items.size() != b->sort_items.size()) return false;
      for (size_t i = 0; i < a->sort_items.size(); ++i) {
        if (a->sort_items[i].descending != b->sort_items[i].descending ||
            !ScalarEquals(a->sort_items[i].expr, b->sort_items[i].expr)) {
          return false;
        }
      }
      break;
    }
    case PlanKind::kLimit:
      if (a->limit != b->limit) return false;
      break;
  }
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!PlanEquals(a->children[i], b->children[i])) return false;
  }
  return true;
}

}  // namespace fgac::algebra
