#ifndef FGAC_ALGEBRA_PLAN_HASH_H_
#define FGAC_ALGEBRA_PLAN_HASH_H_

#include <cstdint>

#include "algebra/plan.h"

namespace fgac::algebra {

/// 64-bit structural fingerprint of a plan tree. Display metadata
/// (output_names, get_columns beyond their count) is excluded, matching
/// PlanEquals.
uint64_t PlanFingerprint(const PlanPtr& plan);

/// Deep structural equality of plan trees (semantic identity: names are
/// ignored, scalar structure and child order matter).
bool PlanEquals(const PlanPtr& a, const PlanPtr& b);

}  // namespace fgac::algebra

#endif  // FGAC_ALGEBRA_PLAN_HASH_H_
