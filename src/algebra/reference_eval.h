#ifndef FGAC_ALGEBRA_REFERENCE_EVAL_H_
#define FGAC_ALGEBRA_REFERENCE_EVAL_H_

#include "algebra/plan.h"
#include "common/result.h"
#include "storage/database_state.h"
#include "storage/relation.h"

namespace fgac::algebra {

/// Straight-line materializing evaluator for logical plans. Not fast, but
/// simple enough to serve as the semantic ground truth: the physical
/// executor (src/exec) is property-tested against it, and the validity
/// engine uses it for the C3 visible-non-emptiness checks.
Result<storage::Relation> ReferenceEval(const PlanPtr& plan,
                                        const storage::DatabaseState& state);

}  // namespace fgac::algebra

#endif  // FGAC_ALGEBRA_REFERENCE_EVAL_H_
