#ifndef FGAC_ALGEBRA_BINDER_H_
#define FGAC_ALGEBRA_BINDER_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace fgac::algebra {

/// Translates parsed SELECT statements into canonical logical plans:
///  * name resolution against the catalog (tables and views; views are
///    macro-expanded, with `$` parameters substituted from `params`),
///  * FROM items combined into a left-deep join chain, WHERE conjuncts in a
///    Select above it (transformation rules later push them down),
///  * grouping/aggregation lowered to Aggregate + Project (+ Select for
///    HAVING), DISTINCT/ORDER BY/LIMIT lowered to their nodes,
///  * the result normalized (see normalize.h) so equal queries written
///    differently produce structurally equal plans.
class Binder {
 public:
  struct Options {
    /// Values for `$` parameters (e.g. {"user-id", '11'}). Binding fails on
    /// an unsubstituted `$` parameter.
    std::map<std::string, Value> params;
    /// When true, `$$` parameters bind to kAccessParam scalars (used when
    /// binding access-pattern authorization views for the validity engine).
    /// When false, an unbound `$$` parameter is an error.
    bool allow_access_params = false;
    /// When true, a `$` parameter absent from `params` binds to a
    /// kAccessParam scalar instead of failing — the PREPARE path, which
    /// binds the statement once with its placeholders held open and
    /// substitutes concrete values per EXECUTE (BindPlanParams). Session
    /// parameters present in `params` still substitute normally.
    bool defer_unbound_params = false;
  };

  Binder(const catalog::Catalog& catalog, Options options)
      : catalog_(catalog), options_(std::move(options)) {}

  /// Binds a full SELECT statement to a normalized logical plan.
  Result<PlanPtr> BindSelect(const sql::SelectStmt& stmt);

  /// Binds an expression whose column references resolve against a single
  /// table's columns (slot i = column i). Used for inclusion-dependency
  /// predicates and DML WHERE clauses. Qualified references must use the
  /// table's name. `$` parameters resolve from `params`.
  static Result<ScalarPtr> BindOverTable(
      const sql::ExprPtr& expr, const catalog::TableSchema& schema,
      const std::map<std::string, Value>& params = {});

  /// Binds an update-authorization predicate (paper Section 4.4).
  /// For INSERT: bare/qualified refs resolve to the new tuple (slots
  /// [0, n)). For DELETE: to the old tuple. For UPDATE: the row layout is
  /// old tuple in slots [0, n) and new tuple in [n, 2n); `old(t.c)` /
  /// `new(t.c)` select the image, bare references default to the old image.
  enum class UpdateImage { kInsert, kDelete, kUpdate };
  static Result<ScalarPtr> BindUpdatePredicate(
      const sql::ExprPtr& expr, const catalog::TableSchema& schema,
      UpdateImage image, const std::map<std::string, Value>& params);

 private:
  struct ScopeColumn {
    std::string qualifier;  // table alias (lowercase)
    std::string name;       // column name (lowercase)
    int slot = 0;
  };
  struct Scope {
    std::vector<ScopeColumn> columns;
  };
  struct BoundFrom {
    PlanPtr plan;
    Scope scope;
  };

  Result<BoundFrom> BindTableRef(const sql::TableRefPtr& ref, int depth);
  Result<BoundFrom> BindNamedRelation(const std::string& name,
                                      const std::string& alias, int depth);
  Result<PlanPtr> BindSelectImpl(const sql::SelectStmt& stmt, int depth);

  Result<ScalarPtr> BindExpr(const sql::ExprPtr& expr, const Scope& scope);
  Result<int> ResolveColumn(const std::string& qualifier,
                            const std::string& name, const Scope& scope);

  const catalog::Catalog& catalog_;
  Options options_;
};

}  // namespace fgac::algebra

#endif  // FGAC_ALGEBRA_BINDER_H_
