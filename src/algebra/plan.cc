#include "algebra/plan.h"

#include <cassert>
#include <set>

namespace fgac::algebra {

namespace {

std::shared_ptr<Plan> NewPlan(PlanKind kind) {
  auto p = std::make_shared<Plan>();
  p->kind = kind;
  return p;
}

}  // namespace

PlanPtr MakeGet(std::string table, std::vector<std::string> columns) {
  auto p = NewPlan(PlanKind::kGet);
  p->table = std::move(table);
  p->get_columns = std::move(columns);
  return p;
}

PlanPtr MakeValues(std::vector<Row> rows, size_t arity) {
  auto p = NewPlan(PlanKind::kValues);
  p->rows = std::move(rows);
  p->values_arity = arity;
  return p;
}

PlanPtr MakeSelect(std::vector<ScalarPtr> predicates, PlanPtr child) {
  if (predicates.empty()) return child;
  auto p = NewPlan(PlanKind::kSelect);
  p->predicates = std::move(predicates);
  p->children.push_back(std::move(child));
  return p;
}

PlanPtr MakeProject(std::vector<ScalarPtr> exprs,
                    std::vector<std::string> output_names, PlanPtr child) {
  auto p = NewPlan(PlanKind::kProject);
  p->exprs = std::move(exprs);
  p->output_names = std::move(output_names);
  p->children.push_back(std::move(child));
  return p;
}

PlanPtr MakeJoin(std::vector<ScalarPtr> predicates, PlanPtr left,
                 PlanPtr right) {
  auto p = NewPlan(PlanKind::kJoin);
  p->predicates = std::move(predicates);
  p->children.push_back(std::move(left));
  p->children.push_back(std::move(right));
  return p;
}

PlanPtr MakeAggregate(std::vector<ScalarPtr> group_by, std::vector<AggExpr> aggs,
                      std::vector<std::string> output_names, PlanPtr child) {
  auto p = NewPlan(PlanKind::kAggregate);
  p->group_by = std::move(group_by);
  p->aggs = std::move(aggs);
  p->output_names = std::move(output_names);
  p->children.push_back(std::move(child));
  return p;
}

PlanPtr MakeDistinct(PlanPtr child) {
  auto p = NewPlan(PlanKind::kDistinct);
  p->children.push_back(std::move(child));
  return p;
}

PlanPtr MakeSort(std::vector<SortItem> items, PlanPtr child) {
  auto p = NewPlan(PlanKind::kSort);
  p->sort_items = std::move(items);
  p->children.push_back(std::move(child));
  return p;
}

PlanPtr MakeLimit(int64_t limit, PlanPtr child) {
  auto p = NewPlan(PlanKind::kLimit);
  p->limit = limit;
  p->children.push_back(std::move(child));
  return p;
}

PlanPtr MakeUnionAll(std::vector<PlanPtr> children) {
  assert(!children.empty());
  if (children.empty()) {
    // A zero-branch union is an empty relation; produce one explicitly
    // instead of a malformed node downstream code would trip over.
    auto empty = NewPlan(PlanKind::kValues);
    empty->values_arity = 0;
    return empty;
  }
  auto p = NewPlan(PlanKind::kUnionAll);
  p->children = std::move(children);
  return p;
}

size_t OutputArity(const Plan& plan) {
  switch (plan.kind) {
    case PlanKind::kGet:
      return plan.get_columns.size();
    case PlanKind::kValues:
      return plan.values_arity;
    case PlanKind::kSelect:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      return OutputArity(*plan.children[0]);
    case PlanKind::kProject:
      return plan.exprs.size();
    case PlanKind::kJoin:
      return OutputArity(*plan.children[0]) + OutputArity(*plan.children[1]);
    case PlanKind::kAggregate:
      return plan.group_by.size() + plan.aggs.size();
    case PlanKind::kUnionAll:
      return OutputArity(*plan.children[0]);
  }
  return 0;
}

std::vector<std::string> OutputNames(const Plan& plan) {
  switch (plan.kind) {
    case PlanKind::kGet:
      return plan.get_columns;
    case PlanKind::kValues: {
      std::vector<std::string> names;
      for (size_t i = 0; i < plan.values_arity; ++i) {
        names.push_back("col" + std::to_string(i));
      }
      return names;
    }
    case PlanKind::kSelect:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kUnionAll:
      return OutputNames(*plan.children[0]);
    case PlanKind::kProject:
    case PlanKind::kAggregate: {
      std::vector<std::string> names = plan.output_names;
      size_t arity = OutputArity(plan);
      while (names.size() < arity) {
        names.push_back("col" + std::to_string(names.size()));
      }
      return names;
    }
    case PlanKind::kJoin: {
      std::vector<std::string> names = OutputNames(*plan.children[0]);
      std::vector<std::string> right = OutputNames(*plan.children[1]);
      names.insert(names.end(), right.begin(), right.end());
      return names;
    }
  }
  return {};
}

namespace {

std::string PredicatesToString(const std::vector<ScalarPtr>& preds) {
  std::string out;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out += " AND ";
    out += ScalarToString(preds[i]);
  }
  return out;
}

}  // namespace

std::string PlanToString(const PlanPtr& plan, int indent) {
  if (plan == nullptr) return "";
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (plan->kind) {
    case PlanKind::kGet:
      out += "Get(" + plan->table + ")";
      break;
    case PlanKind::kValues:
      out += "Values(" + std::to_string(plan->rows.size()) + " rows)";
      break;
    case PlanKind::kSelect:
      out += "Select[" + PredicatesToString(plan->predicates) + "]";
      break;
    case PlanKind::kProject: {
      out += "Project[";
      for (size_t i = 0; i < plan->exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += ScalarToString(plan->exprs[i]);
      }
      out += "]";
      break;
    }
    case PlanKind::kJoin:
      out += plan->predicates.empty()
                 ? "CrossJoin"
                 : "Join[" + PredicatesToString(plan->predicates) + "]";
      break;
    case PlanKind::kAggregate: {
      out += "Aggregate[by: ";
      for (size_t i = 0; i < plan->group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += ScalarToString(plan->group_by[i]);
      }
      out += "; aggs: ";
      for (size_t i = 0; i < plan->aggs.size(); ++i) {
        if (i > 0) out += ", ";
        out += AggFuncName(plan->aggs[i].func);
        if (plan->aggs[i].arg != nullptr) {
          out += "(" + std::string(plan->aggs[i].distinct ? "DISTINCT " : "") +
                 ScalarToString(plan->aggs[i].arg) + ")";
        }
      }
      out += "]";
      break;
    }
    case PlanKind::kDistinct:
      out += "Distinct";
      break;
    case PlanKind::kSort: {
      out += "Sort[";
      for (size_t i = 0; i < plan->sort_items.size(); ++i) {
        if (i > 0) out += ", ";
        out += ScalarToString(plan->sort_items[i].expr);
        if (plan->sort_items[i].descending) out += " DESC";
      }
      out += "]";
      break;
    }
    case PlanKind::kLimit:
      out += "Limit[" + std::to_string(plan->limit) + "]";
      break;
    case PlanKind::kUnionAll:
      out += "UnionAll";
      break;
  }
  out += "\n";
  for (const PlanPtr& child : plan->children) {
    out += PlanToString(child, indent + 1);
  }
  return out;
}

bool PlanHasAccessParam(const PlanPtr& plan) {
  if (plan == nullptr) return false;
  for (const auto& p : plan->predicates) {
    if (HasAccessParam(p)) return true;
  }
  for (const auto& e : plan->exprs) {
    if (HasAccessParam(e)) return true;
  }
  for (const auto& g : plan->group_by) {
    if (HasAccessParam(g)) return true;
  }
  for (const auto& a : plan->aggs) {
    if (HasAccessParam(a.arg)) return true;
  }
  for (const auto& s : plan->sort_items) {
    if (HasAccessParam(s.expr)) return true;
  }
  for (const PlanPtr& child : plan->children) {
    if (PlanHasAccessParam(child)) return true;
  }
  return false;
}

PlanPtr BindPlanParams(const PlanPtr& plan,
                       const std::map<std::string, Value>& bindings) {
  if (plan == nullptr) return nullptr;
  auto bind_scalar = [&bindings](const ScalarPtr& s) {
    ScalarPtr out = s;
    for (const auto& [name, value] : bindings) {
      out = BindAccessParam(out, name, value);
    }
    return out;
  };
  auto copy = std::make_shared<Plan>(*plan);
  for (ScalarPtr& p : copy->predicates) p = bind_scalar(p);
  for (ScalarPtr& x : copy->exprs) x = bind_scalar(x);
  for (ScalarPtr& g : copy->group_by) g = bind_scalar(g);
  for (AggExpr& a : copy->aggs) a.arg = bind_scalar(a.arg);
  for (SortItem& s : copy->sort_items) s.expr = bind_scalar(s.expr);
  for (PlanPtr& c : copy->children) c = BindPlanParams(c, bindings);
  return copy;
}

namespace {

void CollectScalarParams(const ScalarPtr& s, std::set<std::string>* out) {
  if (s == nullptr) return;
  if (s->kind == ScalarKind::kAccessParam) out->insert(s->param);
  CollectScalarParams(s->left, out);
  CollectScalarParams(s->right, out);
  CollectScalarParams(s->operand, out);
  for (const ScalarPtr& e : s->in_list) CollectScalarParams(e, out);
}

void CollectPlanParamsInto(const PlanPtr& plan, std::set<std::string>* out) {
  if (plan == nullptr) return;
  for (const ScalarPtr& p : plan->predicates) CollectScalarParams(p, out);
  for (const ScalarPtr& e : plan->exprs) CollectScalarParams(e, out);
  for (const ScalarPtr& g : plan->group_by) CollectScalarParams(g, out);
  for (const AggExpr& a : plan->aggs) CollectScalarParams(a.arg, out);
  for (const SortItem& s : plan->sort_items) CollectScalarParams(s.expr, out);
  for (const PlanPtr& c : plan->children) CollectPlanParamsInto(c, out);
}

}  // namespace

std::vector<std::string> CollectPlanParams(const PlanPtr& plan) {
  std::set<std::string> names;
  CollectPlanParamsInto(plan, &names);
  return std::vector<std::string>(names.begin(), names.end());
}

}  // namespace fgac::algebra
