#include "algebra/binder.h"

#include <algorithm>

#include "algebra/normalize.h"
#include "sql/printer.h"

namespace fgac::algebra {

namespace {

constexpr int kMaxViewDepth = 16;

AggFunc AggFromName(const std::string& name, bool star) {
  if (star) return AggFunc::kCountStar;
  if (name == "count") return AggFunc::kCount;
  if (name == "sum") return AggFunc::kSum;
  if (name == "avg") return AggFunc::kAvg;
  if (name == "min") return AggFunc::kMin;
  return AggFunc::kMax;
}

bool ExprContainsAggregate(const sql::ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == sql::ExprKind::kFuncCall && sql::IsAggregateFunc(e->func_name)) {
    return true;
  }
  if (ExprContainsAggregate(e->left) || ExprContainsAggregate(e->right) ||
      ExprContainsAggregate(e->operand)) {
    return true;
  }
  for (const auto& a : e->args) {
    if (ExprContainsAggregate(a)) return true;
  }
  for (const auto& a : e->in_list) {
    if (ExprContainsAggregate(a)) return true;
  }
  return false;
}

/// Display name for a select item without an alias.
std::string DeriveName(const sql::ExprPtr& e, size_t index) {
  if (e == nullptr) return "col" + std::to_string(index);
  if (e->kind == sql::ExprKind::kColumnRef) return e->column;
  if (e->kind == sql::ExprKind::kFuncCall) return e->func_name;
  return "col" + std::to_string(index);
}

}  // namespace

Result<int> Binder::ResolveColumn(const std::string& qualifier,
                                  const std::string& name, const Scope& scope) {
  int found = -1;
  for (const ScopeColumn& col : scope.columns) {
    if (col.name != name) continue;
    if (!qualifier.empty() && col.qualifier != qualifier) continue;
    if (found >= 0) {
      return Status::BindError("ambiguous column reference '" +
                               (qualifier.empty() ? name
                                                  : qualifier + "." + name) +
                               "'");
    }
    found = col.slot;
  }
  if (found < 0) {
    return Status::BindError("unknown column '" +
                             (qualifier.empty() ? name : qualifier + "." + name) +
                             "'");
  }
  return found;
}

Result<ScalarPtr> Binder::BindExpr(const sql::ExprPtr& expr, const Scope& scope) {
  if (expr == nullptr) return Status::BindError("null expression");
  switch (expr->kind) {
    case sql::ExprKind::kLiteral:
      return MakeLiteralScalar(expr->value);
    case sql::ExprKind::kColumnRef: {
      FGAC_ASSIGN_OR_RETURN(int slot,
                            ResolveColumn(expr->qualifier, expr->column, scope));
      return MakeColumn(slot);
    }
    case sql::ExprKind::kParam: {
      auto it = options_.params.find(expr->param_name);
      if (it == options_.params.end()) {
        if (options_.defer_unbound_params) {
          return MakeAccessParamScalar(expr->param_name);
        }
        return Status::BindError("unbound parameter $" + expr->param_name);
      }
      return MakeLiteralScalar(it->second);
    }
    case sql::ExprKind::kAccessParam:
      if (!options_.allow_access_params) {
        return Status::BindError("unbound access-pattern parameter $$" +
                                 expr->param_name);
      }
      return MakeAccessParamScalar(expr->param_name);
    case sql::ExprKind::kBinary: {
      FGAC_ASSIGN_OR_RETURN(ScalarPtr left, BindExpr(expr->left, scope));
      FGAC_ASSIGN_OR_RETURN(ScalarPtr right, BindExpr(expr->right, scope));
      return MakeBinaryScalar(expr->bin_op, std::move(left), std::move(right));
    }
    case sql::ExprKind::kUnary: {
      FGAC_ASSIGN_OR_RETURN(ScalarPtr operand, BindExpr(expr->operand, scope));
      return MakeUnaryScalar(expr->un_op, std::move(operand));
    }
    case sql::ExprKind::kFuncCall:
      if (sql::IsAggregateFunc(expr->func_name)) {
        return Status::BindError(
            "aggregate function in an invalid position: " +
            sql::ExprToSql(expr));
      }
      return Status::BindError("unknown function '" + expr->func_name + "'");
    case sql::ExprKind::kInList: {
      FGAC_ASSIGN_OR_RETURN(ScalarPtr operand, BindExpr(expr->operand, scope));
      std::vector<ScalarPtr> list;
      list.reserve(expr->in_list.size());
      for (const auto& e : expr->in_list) {
        FGAC_ASSIGN_OR_RETURN(ScalarPtr s, BindExpr(e, scope));
        list.push_back(std::move(s));
      }
      return MakeInListScalar(std::move(operand), std::move(list),
                              expr->negated);
    }
    case sql::ExprKind::kBetween: {
      // Desugar: lo <= x AND x <= hi (negated: NOT (...)).
      FGAC_ASSIGN_OR_RETURN(ScalarPtr x, BindExpr(expr->operand, scope));
      FGAC_ASSIGN_OR_RETURN(ScalarPtr lo, BindExpr(expr->left, scope));
      FGAC_ASSIGN_OR_RETURN(ScalarPtr hi, BindExpr(expr->right, scope));
      ScalarPtr both = MakeBinaryScalar(
          sql::BinOp::kAnd, MakeBinaryScalar(sql::BinOp::kLe, lo, x),
          MakeBinaryScalar(sql::BinOp::kLe, x, hi));
      if (expr->negated) return MakeUnaryScalar(sql::UnOp::kNot, both);
      return both;
    }
  }
  return Status::BindError("unsupported expression kind");
}

Result<Binder::BoundFrom> Binder::BindNamedRelation(const std::string& name,
                                                    const std::string& alias,
                                                    int depth) {
  if (depth > kMaxViewDepth) {
    return Status::BindError("view nesting too deep (cycle?) at '" + name + "'");
  }
  std::string effective_alias = alias.empty() ? name : alias;
  if (const catalog::TableSchema* table = catalog_.GetTable(name)) {
    std::vector<std::string> columns;
    columns.reserve(table->num_columns());
    for (const catalog::Column& c : table->columns()) columns.push_back(c.name);
    BoundFrom out;
    out.plan = MakeGet(name, columns);
    for (size_t i = 0; i < columns.size(); ++i) {
      out.scope.columns.push_back(
          {effective_alias, columns[i], static_cast<int>(i)});
    }
    return out;
  }
  if (const catalog::ViewDefinition* view = catalog_.GetView(name)) {
    // Substitute $ parameters from the session, then bind the body.
    std::map<std::string, Value> access;  // $$ stay symbolic (or error inside)
    auto instantiated = view->select->CloneWithParams(options_.params, access);
    FGAC_ASSIGN_OR_RETURN(PlanPtr plan, BindSelectImpl(*instantiated, depth + 1));
    std::vector<std::string> columns = OutputNames(*plan);
    BoundFrom out;
    out.plan = std::move(plan);
    for (size_t i = 0; i < columns.size(); ++i) {
      out.scope.columns.push_back(
          {effective_alias, columns[i], static_cast<int>(i)});
    }
    return out;
  }
  return Status::BindError("unknown relation '" + name + "'");
}

Result<Binder::BoundFrom> Binder::BindTableRef(const sql::TableRefPtr& ref,
                                               int depth) {
  if (ref->kind == sql::TableRef::Kind::kNamed) {
    return BindNamedRelation(ref->name, ref->alias, depth);
  }
  // Join: bind both sides, concatenate scopes, hoist the ON conjuncts into
  // a Select so the canonical shape is Select-over-cross-join (the
  // transformation rules re-derive the pushed-down join forms).
  FGAC_ASSIGN_OR_RETURN(BoundFrom left, BindTableRef(ref->join_left, depth));
  FGAC_ASSIGN_OR_RETURN(BoundFrom right, BindTableRef(ref->join_right, depth));
  size_t left_arity = OutputArity(*left.plan);
  BoundFrom out;
  out.scope = left.scope;
  for (const ScopeColumn& col : right.scope.columns) {
    out.scope.columns.push_back(
        {col.qualifier, col.name, col.slot + static_cast<int>(left_arity)});
  }
  PlanPtr join = MakeJoin({}, left.plan, right.plan);
  FGAC_ASSIGN_OR_RETURN(ScalarPtr on, BindExpr(ref->join_on, out.scope));
  out.plan = MakeSelect(SplitConjuncts(on), std::move(join));
  return out;
}

Result<PlanPtr> Binder::BindSelect(const sql::SelectStmt& stmt) {
  FGAC_ASSIGN_OR_RETURN(PlanPtr plan, BindSelectImpl(stmt, 0));
  return NormalizePlan(plan);
}

Result<PlanPtr> Binder::BindSelectImpl(const sql::SelectStmt& stmt, int depth) {
  if (stmt.from.empty()) {
    // SELECT <constants>: a single-row VALUES with projected expressions.
    Scope empty_scope;
    std::vector<ScalarPtr> exprs;
    std::vector<std::string> names;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const sql::SelectItem& item = stmt.items[i];
      if (item.is_star) return Status::BindError("'*' without FROM");
      FGAC_ASSIGN_OR_RETURN(ScalarPtr s, BindExpr(item.expr, empty_scope));
      exprs.push_back(std::move(s));
      names.push_back(item.alias.empty() ? DeriveName(item.expr, i)
                                         : item.alias);
    }
    PlanPtr values = MakeValues({Row{}}, 0);
    PlanPtr current =
        MakeProject(std::move(exprs), std::move(names), std::move(values));
    if (!stmt.union_all.empty()) {
      std::vector<PlanPtr> branches;
      branches.push_back(current);
      size_t arity = OutputArity(*current);
      for (const auto& branch : stmt.union_all) {
        FGAC_ASSIGN_OR_RETURN(PlanPtr bp, BindSelectImpl(*branch, depth));
        if (OutputArity(*bp) != arity) {
          return Status::BindError(
              "UNION ALL branches must have the same number of columns");
        }
        branches.push_back(std::move(bp));
      }
      current = MakeUnionAll(std::move(branches));
    }
    return current;
  }

  // 1. FROM: left-deep cross-join chain with hoisted predicates.
  BoundFrom from;
  bool first = true;
  std::vector<ScalarPtr> hoisted;
  for (const sql::TableRefPtr& ref : stmt.from) {
    FGAC_ASSIGN_OR_RETURN(BoundFrom item, BindTableRef(ref, depth));
    // Peel a hoisted Select produced by ON-clause binding so the predicates
    // can move above the full chain.
    PlanPtr item_plan = item.plan;
    std::vector<ScalarPtr> item_preds;
    if (item_plan->kind == PlanKind::kSelect &&
        item_plan->children[0]->kind == PlanKind::kJoin) {
      item_preds = item_plan->predicates;
      item_plan = item_plan->children[0];
    }
    if (first) {
      from.plan = item_plan;
      from.scope = item.scope;
      hoisted = std::move(item_preds);
      first = false;
      continue;
    }
    size_t offset = OutputArity(*from.plan);
    for (const ScopeColumn& col : item.scope.columns) {
      from.scope.columns.push_back(
          {col.qualifier, col.name, col.slot + static_cast<int>(offset)});
    }
    for (const ScalarPtr& p : item_preds) {
      hoisted.push_back(RemapSlots(p, [offset](int slot) {
        return slot + static_cast<int>(offset);
      }));
    }
    from.plan = MakeJoin({}, from.plan, item_plan);
  }

  // 2. WHERE.
  std::vector<ScalarPtr> where_preds = std::move(hoisted);
  if (stmt.where != nullptr) {
    if (ExprContainsAggregate(stmt.where)) {
      return Status::BindError("aggregate functions are not allowed in WHERE");
    }
    FGAC_ASSIGN_OR_RETURN(ScalarPtr w, BindExpr(stmt.where, from.scope));
    for (ScalarPtr& c : SplitConjuncts(w)) where_preds.push_back(std::move(c));
  }
  PlanPtr current = MakeSelect(NormalizePredicates(std::move(where_preds)),
                               from.plan);

  // 3. Aggregation.
  bool has_aggregate = !stmt.group_by.empty() ||
                       ExprContainsAggregate(stmt.having);
  for (const sql::SelectItem& item : stmt.items) {
    if (!item.is_star && ExprContainsAggregate(item.expr)) has_aggregate = true;
  }
  for (const sql::OrderItem& item : stmt.order_by) {
    if (ExprContainsAggregate(item.expr)) has_aggregate = true;
  }

  std::vector<ScalarPtr> out_exprs;
  std::vector<std::string> out_names;

  if (has_aggregate) {
    // Bind group-by expressions over the FROM scope.
    std::vector<ScalarPtr> group_scalars;
    std::vector<std::string> group_names;
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      FGAC_ASSIGN_OR_RETURN(ScalarPtr g, BindExpr(stmt.group_by[i], from.scope));
      group_scalars.push_back(NormalizeScalar(g));
      group_names.push_back(DeriveName(stmt.group_by[i], i));
    }

    // Collect aggregate calls from select list, HAVING and ORDER BY.
    std::vector<AggExpr> agg_exprs;
    auto find_or_add_agg = [&](const sql::ExprPtr& call) -> Result<int> {
      AggExpr bound;
      bound.func = AggFromName(call->func_name, call->star_arg);
      bound.distinct = call->distinct_arg;
      if (!call->star_arg) {
        if (call->args.size() != 1) {
          return Status::BindError("aggregate '" + call->func_name +
                                   "' takes exactly one argument");
        }
        if (ExprContainsAggregate(call->args[0])) {
          return Status::BindError("nested aggregate functions");
        }
        FGAC_ASSIGN_OR_RETURN(ScalarPtr arg, BindExpr(call->args[0], from.scope));
        bound.arg = NormalizeScalar(arg);
      }
      for (size_t i = 0; i < agg_exprs.size(); ++i) {
        if (AggExprEquals(agg_exprs[i], bound)) return static_cast<int>(i);
      }
      agg_exprs.push_back(std::move(bound));
      return static_cast<int>(agg_exprs.size() - 1);
    };

    // Rebinds an AST expression against the aggregate output: aggregates
    // become slots |G|+j, group expressions become slots i, constants pass
    // through, anything else must decompose or is an error.
    std::function<Result<ScalarPtr>(const sql::ExprPtr&)> bind_post_agg =
        [&](const sql::ExprPtr& e) -> Result<ScalarPtr> {
      if (e == nullptr) return Status::BindError("null expression");
      if (e->kind == sql::ExprKind::kFuncCall &&
          sql::IsAggregateFunc(e->func_name)) {
        FGAC_ASSIGN_OR_RETURN(int idx, find_or_add_agg(e));
        return MakeColumn(static_cast<int>(group_scalars.size()) + idx);
      }
      // Whole-expression match against a group-by expression.
      if (!ExprContainsAggregate(e)) {
        Result<ScalarPtr> bound = BindExpr(e, from.scope);
        if (bound.ok()) {
          ScalarPtr norm = NormalizeScalar(bound.value());
          std::set<int> slots;
          CollectSlots(norm, &slots);
          if (slots.empty()) return norm;  // constant
          for (size_t i = 0; i < group_scalars.size(); ++i) {
            if (ScalarEquals(norm, group_scalars[i])) {
              return MakeColumn(static_cast<int>(i));
            }
          }
        }
      }
      // Decompose structurally.
      switch (e->kind) {
        case sql::ExprKind::kBinary: {
          FGAC_ASSIGN_OR_RETURN(ScalarPtr l, bind_post_agg(e->left));
          FGAC_ASSIGN_OR_RETURN(ScalarPtr r, bind_post_agg(e->right));
          return MakeBinaryScalar(e->bin_op, std::move(l), std::move(r));
        }
        case sql::ExprKind::kUnary: {
          FGAC_ASSIGN_OR_RETURN(ScalarPtr x, bind_post_agg(e->operand));
          return MakeUnaryScalar(e->un_op, std::move(x));
        }
        case sql::ExprKind::kInList: {
          FGAC_ASSIGN_OR_RETURN(ScalarPtr x, bind_post_agg(e->operand));
          std::vector<ScalarPtr> list;
          for (const auto& el : e->in_list) {
            FGAC_ASSIGN_OR_RETURN(ScalarPtr s, bind_post_agg(el));
            list.push_back(std::move(s));
          }
          return MakeInListScalar(std::move(x), std::move(list), e->negated);
        }
        case sql::ExprKind::kBetween: {
          FGAC_ASSIGN_OR_RETURN(ScalarPtr x, bind_post_agg(e->operand));
          FGAC_ASSIGN_OR_RETURN(ScalarPtr lo, bind_post_agg(e->left));
          FGAC_ASSIGN_OR_RETURN(ScalarPtr hi, bind_post_agg(e->right));
          ScalarPtr both = MakeBinaryScalar(
              sql::BinOp::kAnd, MakeBinaryScalar(sql::BinOp::kLe, lo, x),
              MakeBinaryScalar(sql::BinOp::kLe, x, hi));
          if (e->negated) return MakeUnaryScalar(sql::UnOp::kNot, both);
          return both;
        }
        default:
          return Status::BindError(
              "expression " + sql::ExprToSql(e) +
              " must appear in the GROUP BY clause or be used in an "
              "aggregate function");
      }
    };

    // Bind the select list / having / order-by so all aggregates register.
    struct PendingItem {
      ScalarPtr expr;
      std::string name;
    };
    std::vector<PendingItem> pending;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const sql::SelectItem& item = stmt.items[i];
      if (item.is_star) {
        return Status::BindError("'*' is not allowed in an aggregate query");
      }
      FGAC_ASSIGN_OR_RETURN(ScalarPtr s, bind_post_agg(item.expr));
      pending.push_back(
          {std::move(s),
           item.alias.empty() ? DeriveName(item.expr, i) : item.alias});
    }
    ScalarPtr having_scalar;
    if (stmt.having != nullptr) {
      FGAC_ASSIGN_OR_RETURN(having_scalar, bind_post_agg(stmt.having));
    }

    // Aggregate output names: group columns then aggregate columns.
    std::vector<std::string> agg_out_names = group_names;
    for (const AggExpr& a : agg_exprs) {
      agg_out_names.push_back(AggFuncName(a.func));
    }
    current = MakeAggregate(group_scalars, agg_exprs, std::move(agg_out_names),
                            current);
    if (having_scalar != nullptr) {
      current = MakeSelect(SplitConjuncts(having_scalar), current);
    }
    for (PendingItem& p : pending) {
      out_exprs.push_back(std::move(p.expr));
      out_names.push_back(std::move(p.name));
    }
  } else {
    // Plain projection.
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const sql::SelectItem& item = stmt.items[i];
      if (item.is_star) {
        bool matched = false;
        for (const ScopeColumn& col : from.scope.columns) {
          if (!item.star_qualifier.empty() &&
              col.qualifier != item.star_qualifier) {
            continue;
          }
          out_exprs.push_back(MakeColumn(col.slot));
          out_names.push_back(col.name);
          matched = true;
        }
        if (!matched) {
          return Status::BindError("'" + item.star_qualifier +
                                   ".*' matches no relation in FROM");
        }
        continue;
      }
      FGAC_ASSIGN_OR_RETURN(ScalarPtr s, BindExpr(item.expr, from.scope));
      out_exprs.push_back(std::move(s));
      out_names.push_back(item.alias.empty() ? DeriveName(item.expr, i)
                                             : item.alias);
    }
  }

  current = MakeProject(std::move(out_exprs), out_names, current);
  if (stmt.distinct) current = MakeDistinct(current);

  // UNION ALL branches (bag union; each branch is its own core select).
  if (!stmt.union_all.empty()) {
    std::vector<PlanPtr> branches;
    branches.push_back(current);
    size_t arity = OutputArity(*current);
    for (const auto& branch : stmt.union_all) {
      FGAC_ASSIGN_OR_RETURN(PlanPtr bp, BindSelectImpl(*branch, depth));
      if (OutputArity(*bp) != arity) {
        return Status::BindError(
            "UNION ALL branches must have the same number of columns");
      }
      branches.push_back(std::move(bp));
    }
    current = MakeUnionAll(std::move(branches));
  }

  // ORDER BY: resolve against the output columns (by alias/name, or by
  // 1-based position for integer literals).
  if (!stmt.order_by.empty()) {
    Scope out_scope;
    for (size_t i = 0; i < out_names.size(); ++i) {
      out_scope.columns.push_back({"", out_names[i], static_cast<int>(i)});
    }
    std::vector<SortItem> sort_items;
    for (const sql::OrderItem& item : stmt.order_by) {
      if (item.expr->kind == sql::ExprKind::kLiteral &&
          item.expr->value.is_int()) {
        int64_t pos = item.expr->value.int_value();
        if (pos < 1 || pos > static_cast<int64_t>(out_names.size())) {
          return Status::BindError("ORDER BY position out of range");
        }
        sort_items.push_back(
            {MakeColumn(static_cast<int>(pos - 1)), item.descending});
        continue;
      }
      FGAC_ASSIGN_OR_RETURN(ScalarPtr s, BindExpr(item.expr, out_scope));
      sort_items.push_back({std::move(s), item.descending});
    }
    current = MakeSort(std::move(sort_items), current);
  }
  if (stmt.limit.has_value()) current = MakeLimit(*stmt.limit, current);
  return current;
}

Result<ScalarPtr> Binder::BindOverTable(
    const sql::ExprPtr& expr, const catalog::TableSchema& schema,
    const std::map<std::string, Value>& params) {
  std::function<Result<ScalarPtr>(const sql::ExprPtr&)> bind =
      [&](const sql::ExprPtr& e) -> Result<ScalarPtr> {
    if (e == nullptr) return Status::BindError("null expression");
    switch (e->kind) {
      case sql::ExprKind::kLiteral:
        return MakeLiteralScalar(e->value);
      case sql::ExprKind::kParam: {
        auto it = params.find(e->param_name);
        if (it == params.end()) {
          return Status::BindError("unbound parameter $" + e->param_name);
        }
        return MakeLiteralScalar(it->second);
      }
      case sql::ExprKind::kColumnRef: {
        if (!e->qualifier.empty() && e->qualifier != schema.name()) {
          return Status::BindError("unknown qualifier '" + e->qualifier + "'");
        }
        std::optional<size_t> idx = schema.FindColumn(e->column);
        if (!idx.has_value()) {
          return Status::BindError("unknown column '" + e->column + "'");
        }
        return MakeColumn(static_cast<int>(*idx));
      }
      case sql::ExprKind::kBinary: {
        FGAC_ASSIGN_OR_RETURN(ScalarPtr l, bind(e->left));
        FGAC_ASSIGN_OR_RETURN(ScalarPtr r, bind(e->right));
        return MakeBinaryScalar(e->bin_op, std::move(l), std::move(r));
      }
      case sql::ExprKind::kUnary: {
        FGAC_ASSIGN_OR_RETURN(ScalarPtr x, bind(e->operand));
        return MakeUnaryScalar(e->un_op, std::move(x));
      }
      case sql::ExprKind::kInList: {
        FGAC_ASSIGN_OR_RETURN(ScalarPtr x, bind(e->operand));
        std::vector<ScalarPtr> list;
        for (const auto& el : e->in_list) {
          FGAC_ASSIGN_OR_RETURN(ScalarPtr s, bind(el));
          list.push_back(std::move(s));
        }
        return MakeInListScalar(std::move(x), std::move(list), e->negated);
      }
      case sql::ExprKind::kBetween: {
        FGAC_ASSIGN_OR_RETURN(ScalarPtr x, bind(e->operand));
        FGAC_ASSIGN_OR_RETURN(ScalarPtr lo, bind(e->left));
        FGAC_ASSIGN_OR_RETURN(ScalarPtr hi, bind(e->right));
        ScalarPtr both = MakeBinaryScalar(
            sql::BinOp::kAnd, MakeBinaryScalar(sql::BinOp::kLe, lo, x),
            MakeBinaryScalar(sql::BinOp::kLe, x, hi));
        if (e->negated) return MakeUnaryScalar(sql::UnOp::kNot, both);
        return both;
      }
      default:
        return Status::BindError(
            "expression not allowed in a table-level predicate: " +
            sql::ExprToSql(e));
    }
  };
  FGAC_ASSIGN_OR_RETURN(ScalarPtr s, bind(expr));
  return NormalizeScalar(s);
}

Result<ScalarPtr> Binder::BindUpdatePredicate(
    const sql::ExprPtr& expr, const catalog::TableSchema& schema,
    UpdateImage image, const std::map<std::string, Value>& params) {
  const int n = static_cast<int>(schema.num_columns());
  // Resolves a column reference for a given image (0 = old/base, 1 = new).
  auto resolve = [&](const sql::ExprPtr& col, bool new_image) -> Result<int> {
    if (col == nullptr || col->kind != sql::ExprKind::kColumnRef) {
      return Status::BindError("old()/new() takes a column reference");
    }
    if (!col->qualifier.empty() && col->qualifier != schema.name()) {
      return Status::BindError("unknown qualifier '" + col->qualifier + "'");
    }
    std::optional<size_t> idx = schema.FindColumn(col->column);
    if (!idx.has_value()) {
      return Status::BindError("unknown column '" + col->column + "'");
    }
    int slot = static_cast<int>(*idx);
    if (image == UpdateImage::kUpdate && new_image) slot += n;
    return slot;
  };

  std::function<Result<ScalarPtr>(const sql::ExprPtr&)> bind =
      [&](const sql::ExprPtr& e) -> Result<ScalarPtr> {
    if (e == nullptr) return Status::BindError("null expression");
    switch (e->kind) {
      case sql::ExprKind::kLiteral:
        return MakeLiteralScalar(e->value);
      case sql::ExprKind::kParam: {
        auto it = params.find(e->param_name);
        if (it == params.end()) {
          return Status::BindError("unbound parameter $" + e->param_name);
        }
        return MakeLiteralScalar(it->second);
      }
      case sql::ExprKind::kColumnRef: {
        // Bare reference: new tuple for INSERT, old tuple otherwise.
        FGAC_ASSIGN_OR_RETURN(
            int slot, resolve(e, /*new_image=*/image == UpdateImage::kInsert));
        // For INSERT/DELETE there is a single image at slots [0, n).
        return MakeColumn(image == UpdateImage::kInsert ? slot % n : slot);
      }
      case sql::ExprKind::kFuncCall: {
        if (e->func_name == "old" || e->func_name == "new") {
          if (e->args.size() != 1) {
            return Status::BindError(e->func_name + "() takes one argument");
          }
          bool is_new = e->func_name == "new";
          if (image == UpdateImage::kInsert && !is_new) {
            return Status::BindError("old() is not valid for INSERT");
          }
          if (image == UpdateImage::kDelete && is_new) {
            return Status::BindError("new() is not valid for DELETE");
          }
          FGAC_ASSIGN_OR_RETURN(int slot, resolve(e->args[0], is_new));
          return MakeColumn(image == UpdateImage::kUpdate ? slot : slot % n);
        }
        return Status::BindError("unknown function '" + e->func_name + "'");
      }
      case sql::ExprKind::kBinary: {
        FGAC_ASSIGN_OR_RETURN(ScalarPtr l, bind(e->left));
        FGAC_ASSIGN_OR_RETURN(ScalarPtr r, bind(e->right));
        return MakeBinaryScalar(e->bin_op, std::move(l), std::move(r));
      }
      case sql::ExprKind::kUnary: {
        FGAC_ASSIGN_OR_RETURN(ScalarPtr x, bind(e->operand));
        return MakeUnaryScalar(e->un_op, std::move(x));
      }
      case sql::ExprKind::kInList: {
        FGAC_ASSIGN_OR_RETURN(ScalarPtr x, bind(e->operand));
        std::vector<ScalarPtr> list;
        for (const auto& el : e->in_list) {
          FGAC_ASSIGN_OR_RETURN(ScalarPtr s, bind(el));
          list.push_back(std::move(s));
        }
        return MakeInListScalar(std::move(x), std::move(list), e->negated);
      }
      case sql::ExprKind::kBetween: {
        FGAC_ASSIGN_OR_RETURN(ScalarPtr x, bind(e->operand));
        FGAC_ASSIGN_OR_RETURN(ScalarPtr lo, bind(e->left));
        FGAC_ASSIGN_OR_RETURN(ScalarPtr hi, bind(e->right));
        ScalarPtr both = MakeBinaryScalar(
            sql::BinOp::kAnd, MakeBinaryScalar(sql::BinOp::kLe, lo, x),
            MakeBinaryScalar(sql::BinOp::kLe, x, hi));
        if (e->negated) return MakeUnaryScalar(sql::UnOp::kNot, both);
        return both;
      }
      default:
        return Status::BindError(
            "expression not allowed in an update-authorization predicate");
    }
  };
  FGAC_ASSIGN_OR_RETURN(ScalarPtr s, bind(expr));
  return NormalizeScalar(s);
}

}  // namespace fgac::algebra
