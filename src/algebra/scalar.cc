#include "algebra/scalar.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fgac::algebra {

namespace {

std::shared_ptr<Scalar> NewScalar(ScalarKind kind) {
  auto s = std::make_shared<Scalar>();
  s->kind = kind;
  return s;
}

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

}  // namespace

ScalarPtr MakeColumn(int slot) {
  auto s = NewScalar(ScalarKind::kColumn);
  s->slot = slot;
  return s;
}

ScalarPtr MakeLiteralScalar(Value v) {
  auto s = NewScalar(ScalarKind::kLiteral);
  s->value = std::move(v);
  return s;
}

ScalarPtr MakeAccessParamScalar(std::string name) {
  auto s = NewScalar(ScalarKind::kAccessParam);
  s->param = std::move(name);
  return s;
}

ScalarPtr MakeBinaryScalar(sql::BinOp op, ScalarPtr left, ScalarPtr right) {
  auto s = NewScalar(ScalarKind::kBinary);
  s->bin_op = op;
  s->left = std::move(left);
  s->right = std::move(right);
  return s;
}

ScalarPtr MakeUnaryScalar(sql::UnOp op, ScalarPtr operand) {
  auto s = NewScalar(ScalarKind::kUnary);
  s->un_op = op;
  s->operand = std::move(operand);
  return s;
}

ScalarPtr MakeInListScalar(ScalarPtr operand, std::vector<ScalarPtr> list,
                           bool negated) {
  auto s = NewScalar(ScalarKind::kInList);
  s->operand = std::move(operand);
  s->in_list = std::move(list);
  s->negated = negated;
  return s;
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar: return "count(*)";
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

namespace {

uint64_t ComputeFingerprint(const ScalarPtr& s) {
  uint64_t h = static_cast<uint64_t>(s->kind) * 0x100000001b3ULL + 0xcbf29ce4ULL;
  switch (s->kind) {
    case ScalarKind::kColumn:
      return HashCombine(h, static_cast<uint64_t>(s->slot) + 1);
    case ScalarKind::kLiteral:
      return HashCombine(h, s->value.Hash());
    case ScalarKind::kAccessParam:
      return HashCombine(h, std::hash<std::string>()(s->param));
    case ScalarKind::kBinary:
      h = HashCombine(h, static_cast<uint64_t>(s->bin_op) + 17);
      h = HashCombine(h, ScalarFingerprint(s->left));
      h = HashCombine(h, ScalarFingerprint(s->right));
      return h;
    case ScalarKind::kUnary:
      h = HashCombine(h, static_cast<uint64_t>(s->un_op) + 31);
      h = HashCombine(h, ScalarFingerprint(s->operand));
      return h;
    case ScalarKind::kInList:
      h = HashCombine(h, s->negated ? 2 : 1);
      h = HashCombine(h, ScalarFingerprint(s->operand));
      for (const auto& e : s->in_list) h = HashCombine(h, ScalarFingerprint(e));
      return h;
  }
  return h;
}

}  // namespace

uint64_t ScalarFingerprint(const ScalarPtr& s) {
  if (s == nullptr) return 0;
  if (s->cached_fingerprint != 0) return s->cached_fingerprint;
  uint64_t fp = ComputeFingerprint(s);
  if (fp == 0) fp = 0x9e3779b97f4a7c15ULL;  // reserve 0 for "uncomputed"
  s->cached_fingerprint = fp;
  return fp;
}

bool ScalarEquals(const ScalarPtr& a, const ScalarPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ScalarKind::kColumn:
      return a->slot == b->slot;
    case ScalarKind::kLiteral:
      return a->value == b->value;
    case ScalarKind::kAccessParam:
      return a->param == b->param;
    case ScalarKind::kBinary:
      return a->bin_op == b->bin_op && ScalarEquals(a->left, b->left) &&
             ScalarEquals(a->right, b->right);
    case ScalarKind::kUnary:
      return a->un_op == b->un_op && ScalarEquals(a->operand, b->operand);
    case ScalarKind::kInList: {
      if (a->negated != b->negated || a->in_list.size() != b->in_list.size() ||
          !ScalarEquals(a->operand, b->operand)) {
        return false;
      }
      for (size_t i = 0; i < a->in_list.size(); ++i) {
        if (!ScalarEquals(a->in_list[i], b->in_list[i])) return false;
      }
      return true;
    }
  }
  return false;
}

uint64_t AggExprFingerprint(const AggExpr& a) {
  uint64_t h = static_cast<uint64_t>(a.func) * 0x9e3779b1ULL + 7;
  h = HashCombine(h, a.distinct ? 3 : 5);
  h = HashCombine(h, ScalarFingerprint(a.arg));
  return h;
}

bool AggExprEquals(const AggExpr& a, const AggExpr& b) {
  return a.func == b.func && a.distinct == b.distinct &&
         ScalarEquals(a.arg, b.arg);
}

void CollectSlots(const ScalarPtr& s, std::set<int>* out) {
  if (s == nullptr) return;
  if (s->kind == ScalarKind::kColumn) out->insert(s->slot);
  CollectSlots(s->left, out);
  CollectSlots(s->right, out);
  CollectSlots(s->operand, out);
  for (const auto& e : s->in_list) CollectSlots(e, out);
}

ScalarPtr RemapSlots(const ScalarPtr& s, const std::function<int(int)>& remap) {
  if (s == nullptr) return nullptr;
  switch (s->kind) {
    case ScalarKind::kColumn: {
      int target = remap(s->slot);
      assert(target >= 0);
      if (target < 0) {
        // A slot with no image means the rewrite lost track of a column —
        // an optimizer bug. Fail closed: NULL compares false under
        // three-valued logic, so a predicate over it rejects rows rather
        // than exposing ones the policy would hide.
        return MakeLiteralScalar(Value::Null());
      }
      if (target == s->slot) return s;
      return MakeColumn(target);
    }
    case ScalarKind::kLiteral:
    case ScalarKind::kAccessParam:
      return s;
    case ScalarKind::kBinary:
      return MakeBinaryScalar(s->bin_op, RemapSlots(s->left, remap),
                              RemapSlots(s->right, remap));
    case ScalarKind::kUnary:
      return MakeUnaryScalar(s->un_op, RemapSlots(s->operand, remap));
    case ScalarKind::kInList: {
      std::vector<ScalarPtr> list;
      list.reserve(s->in_list.size());
      for (const auto& e : s->in_list) list.push_back(RemapSlots(e, remap));
      return MakeInListScalar(RemapSlots(s->operand, remap), std::move(list),
                              s->negated);
    }
  }
  return s;
}

ScalarPtr SubstituteSlots(const ScalarPtr& s,
                          const std::vector<ScalarPtr>& substitution) {
  if (s == nullptr) return nullptr;
  switch (s->kind) {
    case ScalarKind::kColumn:
      assert(s->slot >= 0 && static_cast<size_t>(s->slot) < substitution.size());
      if (s->slot < 0 || static_cast<size_t>(s->slot) >= substitution.size()) {
        // Out-of-range slot: same fail-closed degrade as RemapSlots.
        return MakeLiteralScalar(Value::Null());
      }
      return substitution[s->slot];
    case ScalarKind::kLiteral:
    case ScalarKind::kAccessParam:
      return s;
    case ScalarKind::kBinary:
      return MakeBinaryScalar(s->bin_op, SubstituteSlots(s->left, substitution),
                              SubstituteSlots(s->right, substitution));
    case ScalarKind::kUnary:
      return MakeUnaryScalar(s->un_op, SubstituteSlots(s->operand, substitution));
    case ScalarKind::kInList: {
      std::vector<ScalarPtr> list;
      list.reserve(s->in_list.size());
      for (const auto& e : s->in_list) {
        list.push_back(SubstituteSlots(e, substitution));
      }
      return MakeInListScalar(SubstituteSlots(s->operand, substitution),
                              std::move(list), s->negated);
    }
  }
  return s;
}

bool HasAccessParam(const ScalarPtr& s) {
  if (s == nullptr) return false;
  if (s->kind == ScalarKind::kAccessParam) return true;
  if (HasAccessParam(s->left) || HasAccessParam(s->right) ||
      HasAccessParam(s->operand)) {
    return true;
  }
  for (const auto& e : s->in_list) {
    if (HasAccessParam(e)) return true;
  }
  return false;
}

ScalarPtr BindAccessParam(const ScalarPtr& s, const std::string& name,
                          const Value& v) {
  if (s == nullptr) return nullptr;
  switch (s->kind) {
    case ScalarKind::kAccessParam:
      if (s->param == name) return MakeLiteralScalar(v);
      return s;
    case ScalarKind::kColumn:
    case ScalarKind::kLiteral:
      return s;
    case ScalarKind::kBinary:
      return MakeBinaryScalar(s->bin_op, BindAccessParam(s->left, name, v),
                              BindAccessParam(s->right, name, v));
    case ScalarKind::kUnary:
      return MakeUnaryScalar(s->un_op, BindAccessParam(s->operand, name, v));
    case ScalarKind::kInList: {
      std::vector<ScalarPtr> list;
      list.reserve(s->in_list.size());
      for (const auto& e : s->in_list) {
        list.push_back(BindAccessParam(e, name, v));
      }
      return MakeInListScalar(BindAccessParam(s->operand, name, v),
                              std::move(list), s->negated);
    }
  }
  return s;
}

namespace {

const char* BinOpText(sql::BinOp op) {
  switch (op) {
    case sql::BinOp::kEq: return "=";
    case sql::BinOp::kNe: return "<>";
    case sql::BinOp::kLt: return "<";
    case sql::BinOp::kLe: return "<=";
    case sql::BinOp::kGt: return ">";
    case sql::BinOp::kGe: return ">=";
    case sql::BinOp::kAnd: return "AND";
    case sql::BinOp::kOr: return "OR";
    case sql::BinOp::kAdd: return "+";
    case sql::BinOp::kSub: return "-";
    case sql::BinOp::kMul: return "*";
    case sql::BinOp::kDiv: return "/";
    case sql::BinOp::kMod: return "%";
    case sql::BinOp::kLike: return "LIKE";
  }
  return "?";
}

}  // namespace

std::string ScalarToString(const ScalarPtr& s,
                           const std::vector<std::string>* slot_names) {
  if (s == nullptr) return "<null>";
  switch (s->kind) {
    case ScalarKind::kColumn:
      if (slot_names != nullptr && s->slot >= 0 &&
          static_cast<size_t>(s->slot) < slot_names->size()) {
        return (*slot_names)[s->slot];
      }
      return "#" + std::to_string(s->slot);
    case ScalarKind::kLiteral:
      return s->value.ToString();
    case ScalarKind::kAccessParam:
      return "$$" + s->param;
    case ScalarKind::kBinary:
      return "(" + ScalarToString(s->left, slot_names) + " " +
             BinOpText(s->bin_op) + " " + ScalarToString(s->right, slot_names) +
             ")";
    case ScalarKind::kUnary:
      switch (s->un_op) {
        case sql::UnOp::kNot:
          return "(NOT " + ScalarToString(s->operand, slot_names) + ")";
        case sql::UnOp::kNeg:
          return "(-" + ScalarToString(s->operand, slot_names) + ")";
        case sql::UnOp::kIsNull:
          return "(" + ScalarToString(s->operand, slot_names) + " IS NULL)";
        case sql::UnOp::kIsNotNull:
          return "(" + ScalarToString(s->operand, slot_names) + " IS NOT NULL)";
      }
      return "?";
    case ScalarKind::kInList: {
      std::string out = "(" + ScalarToString(s->operand, slot_names);
      if (s->negated) out += " NOT";
      out += " IN (";
      for (size_t i = 0; i < s->in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += ScalarToString(s->in_list[i], slot_names);
      }
      out += "))";
      return out;
    }
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {

Result<Value> EvalArith(sql::BinOp op, const Value& a, const Value& b) {
  // NULL propagation and numeric promotion per SQL.
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::ExecutionError("arithmetic on non-numeric value");
  }
  bool both_int = a.is_int() && b.is_int();
  if (both_int) {
    int64_t x = a.int_value(), y = b.int_value();
    switch (op) {
      case sql::BinOp::kAdd: return Value::Int(x + y);
      case sql::BinOp::kSub: return Value::Int(x - y);
      case sql::BinOp::kMul: return Value::Int(x * y);
      case sql::BinOp::kDiv:
        if (y == 0) return Status::ExecutionError("division by zero");
        return Value::Int(x / y);
      case sql::BinOp::kMod:
        if (y == 0) return Status::ExecutionError("modulo by zero");
        return Value::Int(x % y);
      default:
        break;
    }
  } else {
    double x = a.AsDouble(), y = b.AsDouble();
    switch (op) {
      case sql::BinOp::kAdd: return Value::Double(x + y);
      case sql::BinOp::kSub: return Value::Double(x - y);
      case sql::BinOp::kMul: return Value::Double(x * y);
      case sql::BinOp::kDiv:
        if (y == 0.0) return Status::ExecutionError("division by zero");
        return Value::Double(x / y);
      case sql::BinOp::kMod:
        return Status::ExecutionError("modulo on non-integer values");
      default:
        break;
    }
  }
  return Status::ExecutionError("unsupported arithmetic operator");
}

// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern, size_t ti,
               size_t pi) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive %.
      while (pi < pattern.size() && pattern[pi] == '%') ++pi;
      if (pi == pattern.size()) return true;
      for (size_t k = ti; k <= text.size(); ++k) {
        if (LikeMatch(text, pattern, k, pi)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && pc != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

}  // namespace

std::optional<bool> SqlTruth(const Value& v) {
  if (v.is_null()) return std::nullopt;
  if (v.is_bool()) return v.bool_value();
  // Non-boolean used in boolean context: treat nonzero as true.
  if (v.is_numeric()) return v.AsDouble() != 0.0;
  return !v.string_value().empty();
}

Value ValueFromTruth(std::optional<bool> t) {
  if (!t.has_value()) return Value::Null();
  return Value::Bool(*t);
}

bool SqlLike(const std::string& text, const std::string& pattern) {
  return LikeMatch(text, pattern, 0, 0);
}

Result<Value> EvalBinaryValues(sql::BinOp op, const Value& a, const Value& b) {
  switch (op) {
    case sql::BinOp::kAnd:
      return ValueFromTruth(SqlAnd(SqlTruth(a), SqlTruth(b)));
    case sql::BinOp::kOr:
      return ValueFromTruth(SqlOr(SqlTruth(a), SqlTruth(b)));
    case sql::BinOp::kEq:
    case sql::BinOp::kNe:
    case sql::BinOp::kLt:
    case sql::BinOp::kLe:
    case sql::BinOp::kGt:
    case sql::BinOp::kGe: {
      if (a.is_null() || b.is_null()) return Value::Null();
      int c = a.Compare(b);
      bool r = false;
      switch (op) {
        case sql::BinOp::kEq: r = (c == 0); break;
        case sql::BinOp::kNe: r = (c != 0); break;
        case sql::BinOp::kLt: r = (c < 0); break;
        case sql::BinOp::kLe: r = (c <= 0); break;
        case sql::BinOp::kGt: r = (c > 0); break;
        case sql::BinOp::kGe: r = (c >= 0); break;
        default: break;
      }
      return Value::Bool(r);
    }
    case sql::BinOp::kLike: {
      if (a.is_null() || b.is_null()) return Value::Null();
      if (!a.is_string() || !b.is_string()) {
        return Status::ExecutionError("LIKE requires string operands");
      }
      return Value::Bool(SqlLike(a.string_value(), b.string_value()));
    }
    default:
      return EvalArith(op, a, b);
  }
}

Result<Value> EvalUnaryValue(sql::UnOp op, const Value& v) {
  switch (op) {
    case sql::UnOp::kNot:
      return ValueFromTruth(SqlNot(SqlTruth(v)));
    case sql::UnOp::kNeg:
      if (v.is_null()) return Value::Null();
      if (v.is_int()) return Value::Int(-v.int_value());
      if (v.is_double()) return Value::Double(-v.double_value());
      return Status::ExecutionError("negation of non-numeric value");
    case sql::UnOp::kIsNull:
      return Value::Bool(v.is_null());
    case sql::UnOp::kIsNotNull:
      return Value::Bool(!v.is_null());
  }
  return Status::ExecutionError("unsupported unary operator");
}

Result<Value> EvalScalar(const ScalarPtr& s, const Row& row) {
  if (s == nullptr) return Status::InvalidArgument("null scalar");
  switch (s->kind) {
    case ScalarKind::kColumn:
      if (s->slot < 0 || static_cast<size_t>(s->slot) >= row.size()) {
        return Status::ExecutionError("slot " + std::to_string(s->slot) +
                                      " out of range");
      }
      return row[s->slot];
    case ScalarKind::kLiteral:
      return s->value;
    case ScalarKind::kAccessParam:
      return Status::InvalidArgument("unbound access parameter $$" + s->param);
    case ScalarKind::kBinary: {
      switch (s->bin_op) {
        case sql::BinOp::kAnd: {
          FGAC_ASSIGN_OR_RETURN(Value a, EvalScalar(s->left, row));
          std::optional<bool> ta = SqlTruth(a);
          if (ta.has_value() && !*ta) return Value::Bool(false);
          FGAC_ASSIGN_OR_RETURN(Value b, EvalScalar(s->right, row));
          return ValueFromTruth(SqlAnd(ta, SqlTruth(b)));
        }
        case sql::BinOp::kOr: {
          FGAC_ASSIGN_OR_RETURN(Value a, EvalScalar(s->left, row));
          std::optional<bool> ta = SqlTruth(a);
          if (ta.has_value() && *ta) return Value::Bool(true);
          FGAC_ASSIGN_OR_RETURN(Value b, EvalScalar(s->right, row));
          return ValueFromTruth(SqlOr(ta, SqlTruth(b)));
        }
        default: {
          FGAC_ASSIGN_OR_RETURN(Value a, EvalScalar(s->left, row));
          FGAC_ASSIGN_OR_RETURN(Value b, EvalScalar(s->right, row));
          return EvalBinaryValues(s->bin_op, a, b);
        }
      }
    }
    case ScalarKind::kUnary: {
      FGAC_ASSIGN_OR_RETURN(Value v, EvalScalar(s->operand, row));
      return EvalUnaryValue(s->un_op, v);
    }
    case ScalarKind::kInList: {
      FGAC_ASSIGN_OR_RETURN(Value v, EvalScalar(s->operand, row));
      if (v.is_null()) return Value::Null();
      bool saw_null = false;
      for (const auto& e : s->in_list) {
        FGAC_ASSIGN_OR_RETURN(Value ev, EvalScalar(e, row));
        if (ev.is_null()) {
          saw_null = true;
          continue;
        }
        if (v.Compare(ev) == 0) return Value::Bool(!s->negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(s->negated);
    }
  }
  return Status::ExecutionError("unsupported scalar kind");
}

Result<bool> EvalPredicate(const ScalarPtr& s, const Row& row) {
  FGAC_ASSIGN_OR_RETURN(Value v, EvalScalar(s, row));
  std::optional<bool> t = SqlTruth(v);
  return t.has_value() && *t;
}

// ---------------------------------------------------------------------------
// Aggregate accumulation
// ---------------------------------------------------------------------------

AggAccumulator::AggAccumulator(const AggExpr& agg) : agg_(agg) {}

Status AggAccumulator::Add(const Row& row) {
  if (agg_.func == AggFunc::kCountStar) {
    ++count_;
    return Status::OK();
  }
  FGAC_ASSIGN_OR_RETURN(Value v, EvalScalar(agg_.arg, row));
  return AddValue(v);
}

Status AggAccumulator::AddValue(const Value& v) {
  if (agg_.func == AggFunc::kCountStar) {
    ++count_;
    return Status::OK();
  }
  if (v.is_null()) return Status::OK();
  if (agg_.distinct) {
    auto it = std::lower_bound(distinct_seen_.begin(), distinct_seen_.end(), v);
    if (it != distinct_seen_.end() && *it == v) return Status::OK();
    distinct_seen_.insert(it, v);
  }
  ++count_;
  switch (agg_.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (!v.is_numeric()) {
        return Status::ExecutionError("SUM/AVG of non-numeric value");
      }
      if (v.is_double() || sum_is_double_) {
        if (!sum_is_double_) {
          sum_double_ = static_cast<double>(sum_int_);
          sum_is_double_ = true;
        }
        sum_double_ += v.AsDouble();
      } else {
        sum_int_ += v.int_value();
      }
      break;
    case AggFunc::kMin:
      if (!any_ || v.Compare(min_) < 0) min_ = v;
      break;
    case AggFunc::kMax:
      if (!any_ || v.Compare(max_) > 0) max_ = v;
      break;
  }
  any_ = true;
  return Status::OK();
}

Status AggAccumulator::Merge(const AggAccumulator& other) {
  if (agg_.distinct) {
    // Replaying through AddValue re-deduplicates against our own seen-set
    // and keeps count/sum consistent with the union.
    for (const Value& v : other.distinct_seen_) {
      FGAC_RETURN_NOT_OK(AddValue(v));
    }
    return Status::OK();
  }
  count_ += other.count_;
  if (other.sum_is_double_ || sum_is_double_) {
    if (!sum_is_double_) {
      sum_double_ = static_cast<double>(sum_int_);
      sum_is_double_ = true;
    }
    sum_double_ += other.sum_is_double_
                       ? other.sum_double_
                       : static_cast<double>(other.sum_int_);
  } else {
    sum_int_ += other.sum_int_;
  }
  if (other.any_) {
    if (!any_ || (!other.min_.is_null() && other.min_.Compare(min_) < 0)) {
      min_ = other.min_;
    }
    if (!any_ || (!other.max_.is_null() && other.max_.Compare(max_) > 0)) {
      max_ = other.max_;
    }
  }
  any_ = any_ || other.any_;
  return Status::OK();
}

Value AggAccumulator::Finish() const {
  switch (agg_.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int(count_);
    case AggFunc::kSum:
      if (!any_) return Value::Null();
      return sum_is_double_ ? Value::Double(sum_double_) : Value::Int(sum_int_);
    case AggFunc::kAvg: {
      if (!any_) return Value::Null();
      double total = sum_is_double_ ? sum_double_ : static_cast<double>(sum_int_);
      return Value::Double(total / static_cast<double>(count_));
    }
    case AggFunc::kMin:
      return any_ ? min_ : Value::Null();
    case AggFunc::kMax:
      return any_ ? max_ : Value::Null();
  }
  return Value::Null();
}

}  // namespace fgac::algebra
