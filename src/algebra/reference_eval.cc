#include "algebra/reference_eval.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace fgac::algebra {

namespace {

using storage::Relation;

Result<bool> RowPassesAll(const std::vector<ScalarPtr>& preds, const Row& row) {
  for (const ScalarPtr& p : preds) {
    FGAC_ASSIGN_OR_RETURN(bool pass, EvalPredicate(p, row));
    if (!pass) return false;
  }
  return true;
}

}  // namespace

Result<storage::Relation> ReferenceEval(const PlanPtr& plan,
                                        const storage::DatabaseState& state) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  switch (plan->kind) {
    case PlanKind::kGet: {
      const storage::TableData* data = state.GetTable(plan->table);
      if (data == nullptr) {
        return Status::ExecutionError("no data for table '" + plan->table + "'");
      }
      Relation out(plan->get_columns);
      out.mutable_rows() = data->rows();
      return out;
    }
    case PlanKind::kValues: {
      Relation out(OutputNames(*plan));
      out.mutable_rows() = plan->rows;
      return out;
    }
    case PlanKind::kSelect: {
      FGAC_ASSIGN_OR_RETURN(Relation in,
                            ReferenceEval(plan->children[0], state));
      Relation out(in.column_names());
      for (const Row& row : in.rows()) {
        FGAC_ASSIGN_OR_RETURN(bool pass, RowPassesAll(plan->predicates, row));
        if (pass) out.AddRow(row);
      }
      return out;
    }
    case PlanKind::kProject: {
      FGAC_ASSIGN_OR_RETURN(Relation in,
                            ReferenceEval(plan->children[0], state));
      Relation out(OutputNames(*plan));
      for (const Row& row : in.rows()) {
        Row projected;
        projected.reserve(plan->exprs.size());
        for (const ScalarPtr& e : plan->exprs) {
          FGAC_ASSIGN_OR_RETURN(Value v, EvalScalar(e, row));
          projected.push_back(std::move(v));
        }
        out.AddRow(std::move(projected));
      }
      return out;
    }
    case PlanKind::kJoin: {
      FGAC_ASSIGN_OR_RETURN(Relation left,
                            ReferenceEval(plan->children[0], state));
      FGAC_ASSIGN_OR_RETURN(Relation right,
                            ReferenceEval(plan->children[1], state));
      Relation out(OutputNames(*plan));
      for (const Row& l : left.rows()) {
        for (const Row& r : right.rows()) {
          Row combined = l;
          combined.insert(combined.end(), r.begin(), r.end());
          FGAC_ASSIGN_OR_RETURN(bool pass,
                                RowPassesAll(plan->predicates, combined));
          if (pass) out.AddRow(std::move(combined));
        }
      }
      return out;
    }
    case PlanKind::kAggregate: {
      FGAC_ASSIGN_OR_RETURN(Relation in,
                            ReferenceEval(plan->children[0], state));
      Relation out(OutputNames(*plan));
      // Group rows by the group-by key (Value total order gives stable keys).
      std::map<Row, std::vector<const Row*>> groups;
      for (const Row& row : in.rows()) {
        Row key;
        key.reserve(plan->group_by.size());
        for (const ScalarPtr& g : plan->group_by) {
          FGAC_ASSIGN_OR_RETURN(Value v, EvalScalar(g, row));
          key.push_back(std::move(v));
        }
        groups[std::move(key)].push_back(&row);
      }
      // SQL: aggregation without GROUP BY over empty input yields one row.
      if (groups.empty() && plan->group_by.empty()) {
        groups.emplace(Row{}, std::vector<const Row*>{});
      }
      for (const auto& [key, members] : groups) {
        Row result = key;
        for (const AggExpr& agg : plan->aggs) {
          AggAccumulator acc(agg);
          for (const Row* m : members) {
            FGAC_RETURN_NOT_OK(acc.Add(*m));
          }
          result.push_back(acc.Finish());
        }
        out.AddRow(std::move(result));
      }
      return out;
    }
    case PlanKind::kDistinct: {
      FGAC_ASSIGN_OR_RETURN(Relation in,
                            ReferenceEval(plan->children[0], state));
      Relation out(in.column_names());
      std::unordered_map<Row, bool, RowHash, RowEq> seen;
      for (const Row& row : in.rows()) {
        if (seen.emplace(row, true).second) out.AddRow(row);
      }
      return out;
    }
    case PlanKind::kSort: {
      FGAC_ASSIGN_OR_RETURN(Relation in,
                            ReferenceEval(plan->children[0], state));
      // Precompute sort keys.
      std::vector<std::pair<Row, Row>> keyed;  // (key, row)
      keyed.reserve(in.num_rows());
      for (const Row& row : in.rows()) {
        Row key;
        key.reserve(plan->sort_items.size());
        for (const SortItem& it : plan->sort_items) {
          FGAC_ASSIGN_OR_RETURN(Value v, EvalScalar(it.expr, row));
          key.push_back(std::move(v));
        }
        keyed.emplace_back(std::move(key), row);
      }
      const auto& items = plan->sort_items;
      std::stable_sort(keyed.begin(), keyed.end(),
                       [&items](const auto& a, const auto& b) {
                         for (size_t i = 0; i < items.size(); ++i) {
                           int c = a.first[i].Compare(b.first[i]);
                           if (c != 0) return items[i].descending ? c > 0 : c < 0;
                         }
                         return false;
                       });
      Relation out(in.column_names());
      for (auto& [key, row] : keyed) out.AddRow(std::move(row));
      return out;
    }
    case PlanKind::kLimit: {
      FGAC_ASSIGN_OR_RETURN(Relation in,
                            ReferenceEval(plan->children[0], state));
      Relation out(in.column_names());
      int64_t n = std::min<int64_t>(plan->limit,
                                    static_cast<int64_t>(in.num_rows()));
      for (int64_t i = 0; i < n; ++i) out.AddRow(in.rows()[i]);
      return out;
    }
    case PlanKind::kUnionAll: {
      Relation out;
      bool first = true;
      for (const PlanPtr& child : plan->children) {
        FGAC_ASSIGN_OR_RETURN(Relation part, ReferenceEval(child, state));
        if (first) {
          out = Relation(part.column_names());
          first = false;
        }
        for (const Row& row : part.rows()) out.AddRow(row);
      }
      return out;
    }
  }
  return Status::ExecutionError("unsupported plan kind");
}

}  // namespace fgac::algebra
