#include "algebra/normalize.h"

#include <algorithm>
#include <functional>
#include <map>

namespace fgac::algebra {

namespace {

bool IsLiteralTrue(const ScalarPtr& s) {
  return s != nullptr && s->kind == ScalarKind::kLiteral && s->value.is_bool() &&
         s->value.bool_value();
}

bool IsConstant(const ScalarPtr& s) {
  if (s == nullptr) return true;
  switch (s->kind) {
    case ScalarKind::kColumn:
    case ScalarKind::kAccessParam:
      return false;
    case ScalarKind::kLiteral:
      return true;
    case ScalarKind::kBinary:
      return IsConstant(s->left) && IsConstant(s->right);
    case ScalarKind::kUnary:
      return IsConstant(s->operand);
    case ScalarKind::kInList: {
      if (!IsConstant(s->operand)) return false;
      for (const auto& e : s->in_list) {
        if (!IsConstant(e)) return false;
      }
      return true;
    }
  }
  return false;
}

/// Attempts to fold a constant scalar; returns the input on failure (e.g.
/// division by zero must surface at execution time, not silently vanish).
ScalarPtr TryFold(const ScalarPtr& s) {
  if (s->kind == ScalarKind::kLiteral || !IsConstant(s)) return s;
  Row empty;
  Result<Value> v = EvalScalar(s, empty);
  if (!v.ok()) return s;
  return MakeLiteralScalar(std::move(v).value());
}

bool IsCommutative(sql::BinOp op) {
  return op == sql::BinOp::kEq || op == sql::BinOp::kNe ||
         op == sql::BinOp::kAdd || op == sql::BinOp::kMul ||
         op == sql::BinOp::kAnd || op == sql::BinOp::kOr;
}

sql::BinOp NegateComparison(sql::BinOp op) {
  switch (op) {
    case sql::BinOp::kEq: return sql::BinOp::kNe;
    case sql::BinOp::kNe: return sql::BinOp::kEq;
    case sql::BinOp::kLt: return sql::BinOp::kGe;
    case sql::BinOp::kLe: return sql::BinOp::kGt;
    case sql::BinOp::kGt: return sql::BinOp::kLe;
    case sql::BinOp::kGe: return sql::BinOp::kLt;
    default: return op;
  }
}

bool IsComparison(sql::BinOp op) {
  switch (op) {
    case sql::BinOp::kEq:
    case sql::BinOp::kNe:
    case sql::BinOp::kLt:
    case sql::BinOp::kLe:
    case sql::BinOp::kGt:
    case sql::BinOp::kGe:
      return true;
    default:
      return false;
  }
}

}  // namespace

ScalarPtr NormalizeScalar(const ScalarPtr& s) {
  if (s == nullptr) return nullptr;
  switch (s->kind) {
    case ScalarKind::kColumn:
    case ScalarKind::kLiteral:
    case ScalarKind::kAccessParam:
      return s;
    case ScalarKind::kBinary: {
      ScalarPtr left = NormalizeScalar(s->left);
      ScalarPtr right = NormalizeScalar(s->right);
      sql::BinOp op = s->bin_op;
      // Canonicalize > and >= to < and <= with swapped operands.
      if (op == sql::BinOp::kGt) {
        op = sql::BinOp::kLt;
        std::swap(left, right);
      } else if (op == sql::BinOp::kGe) {
        op = sql::BinOp::kLe;
        std::swap(left, right);
      }
      if (IsCommutative(op) &&
          ScalarFingerprint(left) > ScalarFingerprint(right)) {
        std::swap(left, right);
      }
      return TryFold(MakeBinaryScalar(op, std::move(left), std::move(right)));
    }
    case ScalarKind::kUnary: {
      ScalarPtr operand = NormalizeScalar(s->operand);
      if (s->un_op == sql::UnOp::kNot) {
        // NOT NOT x -> x.
        if (operand->kind == ScalarKind::kUnary &&
            operand->un_op == sql::UnOp::kNot) {
          return operand->operand;
        }
        // NOT (a cmp b) -> (a !cmp b).
        if (operand->kind == ScalarKind::kBinary &&
            IsComparison(operand->bin_op)) {
          return NormalizeScalar(MakeBinaryScalar(
              NegateComparison(operand->bin_op), operand->left, operand->right));
        }
        // NOT (x IS NULL) -> x IS NOT NULL.
        if (operand->kind == ScalarKind::kUnary &&
            operand->un_op == sql::UnOp::kIsNull) {
          return MakeUnaryScalar(sql::UnOp::kIsNotNull, operand->operand);
        }
        if (operand->kind == ScalarKind::kUnary &&
            operand->un_op == sql::UnOp::kIsNotNull) {
          return MakeUnaryScalar(sql::UnOp::kIsNull, operand->operand);
        }
        // NOT (x IN list) -> x NOT IN list.
        if (operand->kind == ScalarKind::kInList) {
          return MakeInListScalar(operand->operand, operand->in_list,
                                  !operand->negated);
        }
      }
      return TryFold(MakeUnaryScalar(s->un_op, std::move(operand)));
    }
    case ScalarKind::kInList: {
      ScalarPtr operand = NormalizeScalar(s->operand);
      std::vector<ScalarPtr> list;
      list.reserve(s->in_list.size());
      for (const auto& e : s->in_list) list.push_back(NormalizeScalar(e));
      // Sort list elements by fingerprint (IN is order-insensitive) and
      // remove structural duplicates.
      std::sort(list.begin(), list.end(), [](const ScalarPtr& a,
                                             const ScalarPtr& b) {
        return ScalarFingerprint(a) < ScalarFingerprint(b);
      });
      list.erase(std::unique(list.begin(), list.end(),
                             [](const ScalarPtr& a, const ScalarPtr& b) {
                               return ScalarEquals(a, b);
                             }),
                 list.end());
      // Single-element IN -> equality.
      if (list.size() == 1 && !s->negated) {
        return NormalizeScalar(
            MakeBinaryScalar(sql::BinOp::kEq, operand, list[0]));
      }
      return TryFold(
          MakeInListScalar(std::move(operand), std::move(list), s->negated));
    }
  }
  return s;
}

namespace {

void FlattenAnd(const ScalarPtr& s, std::vector<ScalarPtr>* out) {
  if (s == nullptr) return;
  if (s->kind == ScalarKind::kBinary && s->bin_op == sql::BinOp::kAnd) {
    FlattenAnd(s->left, out);
    FlattenAnd(s->right, out);
    return;
  }
  out->push_back(s);
}

void SortDedup(std::vector<ScalarPtr>* preds) {
  std::sort(preds->begin(), preds->end(),
            [](const ScalarPtr& a, const ScalarPtr& b) {
              uint64_t fa = ScalarFingerprint(a), fb = ScalarFingerprint(b);
              if (fa != fb) return fa < fb;
              return ScalarToString(a) < ScalarToString(b);
            });
  preds->erase(std::unique(preds->begin(), preds->end(),
                           [](const ScalarPtr& a, const ScalarPtr& b) {
                             return ScalarEquals(a, b);
                           }),
               preds->end());
}

}  // namespace

std::vector<ScalarPtr> SplitConjuncts(const ScalarPtr& s) {
  std::vector<ScalarPtr> flat;
  FlattenAnd(s, &flat);
  std::vector<ScalarPtr> out;
  for (const ScalarPtr& c : flat) {
    ScalarPtr n = NormalizeScalar(c);
    // The normalized conjunct may itself be an AND (e.g. after NOT-pushing);
    // re-flatten.
    if (n->kind == ScalarKind::kBinary && n->bin_op == sql::BinOp::kAnd) {
      std::vector<ScalarPtr> nested;
      FlattenAnd(n, &nested);
      for (const ScalarPtr& inner : nested) out.push_back(inner);
    } else if (!IsLiteralTrue(n)) {
      out.push_back(std::move(n));
    }
  }
  SortDedup(&out);
  return out;
}

namespace {

/// Adds the transitive closure of column equalities (and column=constant
/// propagation across equality classes) to a conjunct set. Sound: a=b ∧ b=c
/// can only be satisfied by non-NULL equal values, so a=c (and constants)
/// filter nothing extra. This closure makes implied join predicates
/// explicit so structurally different but equivalent join groupings unify.
void AddEqualityClosure(std::vector<ScalarPtr>* preds) {
  // Union-find over slots.
  std::map<int, int> parent;
  std::function<int(int)> find = [&](int s) {
    auto it = parent.find(s);
    if (it == parent.end()) {
      parent[s] = s;
      return s;
    }
    if (it->second != s) it->second = find(it->second);
    return it->second;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };

  std::map<int, Value> constants;  // slot -> pinned literal
  for (const ScalarPtr& p : *preds) {
    if (p->kind != ScalarKind::kBinary || p->bin_op != sql::BinOp::kEq) continue;
    const ScalarPtr& l = p->left;
    const ScalarPtr& r = p->right;
    if (l->kind == ScalarKind::kColumn && r->kind == ScalarKind::kColumn) {
      unite(l->slot, r->slot);
    } else if (l->kind == ScalarKind::kColumn &&
               r->kind == ScalarKind::kLiteral) {
      constants.emplace(l->slot, r->value);
    } else if (r->kind == ScalarKind::kColumn &&
               l->kind == ScalarKind::kLiteral) {
      constants.emplace(r->slot, l->value);
    }
  }
  if (parent.empty()) return;

  // Group slots by class root.
  std::map<int, std::vector<int>> classes;
  for (const auto& [slot, p] : parent) classes[find(slot)].push_back(slot);
  for (auto& [root, slots] : classes) {
    if (slots.size() < 2) continue;
    std::sort(slots.begin(), slots.end());
    // All pairwise equalities.
    for (size_t i = 0; i < slots.size(); ++i) {
      for (size_t j = i + 1; j < slots.size(); ++j) {
        preds->push_back(NormalizeScalar(MakeBinaryScalar(
            sql::BinOp::kEq, MakeColumn(slots[i]), MakeColumn(slots[j]))));
      }
    }
    // Propagate a pinned constant to every member of the class.
    for (int s : slots) {
      auto it = constants.find(s);
      if (it == constants.end()) continue;
      for (int t : slots) {
        preds->push_back(NormalizeScalar(
            MakeBinaryScalar(sql::BinOp::kEq, MakeColumn(t),
                             MakeLiteralScalar(it->second))));
      }
      break;
    }
  }
}

}  // namespace

std::vector<ScalarPtr> NormalizePredicates(std::vector<ScalarPtr> preds) {
  std::vector<ScalarPtr> out;
  for (const ScalarPtr& p : preds) {
    for (ScalarPtr& c : SplitConjuncts(p)) out.push_back(std::move(c));
  }
  AddEqualityClosure(&out);
  SortDedup(&out);
  return out;
}

ScalarPtr ConjoinPredicates(const std::vector<ScalarPtr>& preds) {
  if (preds.empty()) return MakeLiteralScalar(Value::Bool(true));
  ScalarPtr out = preds[0];
  for (size_t i = 1; i < preds.size(); ++i) {
    out = MakeBinaryScalar(sql::BinOp::kAnd, std::move(out), preds[i]);
  }
  return out;
}

namespace {

bool IsIdentityProject(const Plan& plan) {
  if (plan.kind != PlanKind::kProject) return false;
  size_t child_arity = OutputArity(*plan.children[0]);
  if (plan.exprs.size() != child_arity) return false;
  for (size_t i = 0; i < plan.exprs.size(); ++i) {
    if (plan.exprs[i]->kind != ScalarKind::kColumn ||
        plan.exprs[i]->slot != static_cast<int>(i)) {
      return false;
    }
  }
  return true;
}

}  // namespace

PlanPtr NormalizePlan(const PlanPtr& plan) {
  if (plan == nullptr) return nullptr;
  std::vector<PlanPtr> children;
  children.reserve(plan->children.size());
  for (const PlanPtr& c : plan->children) children.push_back(NormalizePlan(c));

  switch (plan->kind) {
    case PlanKind::kGet:
    case PlanKind::kValues:
      return plan;
    case PlanKind::kSelect: {
      std::vector<ScalarPtr> preds = NormalizePredicates(plan->predicates);
      PlanPtr child = children[0];
      // Merge Select-over-Select.
      while (child->kind == PlanKind::kSelect) {
        for (const ScalarPtr& p : child->predicates) preds.push_back(p);
        child = child->children[0];
      }
      preds = NormalizePredicates(std::move(preds));
      return MakeSelect(std::move(preds), std::move(child));
    }
    case PlanKind::kProject: {
      std::vector<ScalarPtr> exprs;
      exprs.reserve(plan->exprs.size());
      for (const ScalarPtr& e : plan->exprs) exprs.push_back(NormalizeScalar(e));
      PlanPtr child = children[0];
      // Collapse Project-over-Project by composition.
      while (child->kind == PlanKind::kProject) {
        std::vector<ScalarPtr> composed;
        composed.reserve(exprs.size());
        for (const ScalarPtr& e : exprs) {
          composed.push_back(NormalizeScalar(SubstituteSlots(e, child->exprs)));
        }
        exprs = std::move(composed);
        child = child->children[0];
      }
      auto out = MakeProject(std::move(exprs), plan->output_names, child);
      if (IsIdentityProject(*out)) return child;
      return out;
    }
    case PlanKind::kJoin: {
      std::vector<ScalarPtr> preds = NormalizePredicates(plan->predicates);
      return MakeJoin(std::move(preds), children[0], children[1]);
    }
    case PlanKind::kAggregate: {
      std::vector<ScalarPtr> group_by;
      group_by.reserve(plan->group_by.size());
      for (const ScalarPtr& g : plan->group_by) {
        group_by.push_back(NormalizeScalar(g));
      }
      std::vector<AggExpr> aggs;
      aggs.reserve(plan->aggs.size());
      for (const AggExpr& a : plan->aggs) {
        aggs.push_back({a.func, NormalizeScalar(a.arg), a.distinct});
      }
      return MakeAggregate(std::move(group_by), std::move(aggs),
                           plan->output_names, children[0]);
    }
    case PlanKind::kDistinct: {
      PlanPtr child = children[0];
      // Distinct over Distinct / Aggregate output is a no-op.
      if (child->kind == PlanKind::kDistinct) return child;
      return MakeDistinct(std::move(child));
    }
    case PlanKind::kSort: {
      std::vector<SortItem> items;
      items.reserve(plan->sort_items.size());
      for (const SortItem& it : plan->sort_items) {
        items.push_back({NormalizeScalar(it.expr), it.descending});
      }
      return MakeSort(std::move(items), children[0]);
    }
    case PlanKind::kLimit:
      return MakeLimit(plan->limit, children[0]);
    case PlanKind::kUnionAll:
      return MakeUnionAll(std::move(children));
  }
  return plan;
}

}  // namespace fgac::algebra
