#ifndef FGAC_ALGEBRA_SCALAR_H_
#define FGAC_ALGEBRA_SCALAR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "sql/ast.h"

namespace fgac::algebra {

struct Scalar;
/// Bound scalar expressions are immutable and shared.
using ScalarPtr = std::shared_ptr<const Scalar>;

enum class ScalarKind {
  kColumn,       // input slot index
  kLiteral,      // constant
  kAccessParam,  // unresolved $$ parameter (only inside access-pattern
                 // view plans; never in executable query plans)
  kBinary,
  kUnary,
  kInList,
};

/// A scalar expression over the positional output of a plan node: column
/// references are input slot indices, which makes structurally equal
/// expressions compare equal regardless of the names used in the original
/// SQL — the property the memo's unification (Section 5.6.2) relies on.
struct Scalar {
  ScalarKind kind = ScalarKind::kLiteral;

  // kColumn
  int slot = -1;

  // kLiteral
  Value value;

  // kAccessParam
  std::string param;

  // kBinary
  sql::BinOp bin_op = sql::BinOp::kEq;
  ScalarPtr left;
  ScalarPtr right;

  // kUnary
  sql::UnOp un_op = sql::UnOp::kNot;
  ScalarPtr operand;

  // kInList: operand IN in_list (negated = NOT IN)
  std::vector<ScalarPtr> in_list;
  bool negated = false;

  /// Lazily computed structural fingerprint (0 = not yet computed). Safe
  /// because nodes are immutable after construction.
  mutable uint64_t cached_fingerprint = 0;
};

ScalarPtr MakeColumn(int slot);
ScalarPtr MakeLiteralScalar(Value v);
ScalarPtr MakeAccessParamScalar(std::string name);
ScalarPtr MakeBinaryScalar(sql::BinOp op, ScalarPtr left, ScalarPtr right);
ScalarPtr MakeUnaryScalar(sql::UnOp op, ScalarPtr operand);
ScalarPtr MakeInListScalar(ScalarPtr operand, std::vector<ScalarPtr> list,
                           bool negated);

/// Aggregate functions supported by the Aggregate plan node.
enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

struct AggExpr {
  AggFunc func = AggFunc::kCountStar;
  ScalarPtr arg;  // null for kCountStar
  bool distinct = false;
};

// ---------------------------------------------------------------------------
// Structural identity
// ---------------------------------------------------------------------------

/// 64-bit structural fingerprint; equal scalars have equal fingerprints.
uint64_t ScalarFingerprint(const ScalarPtr& s);

/// Deep structural equality.
bool ScalarEquals(const ScalarPtr& a, const ScalarPtr& b);

uint64_t AggExprFingerprint(const AggExpr& a);
bool AggExprEquals(const AggExpr& a, const AggExpr& b);

// ---------------------------------------------------------------------------
// Traversal and rewriting
// ---------------------------------------------------------------------------

/// Adds every referenced slot index to `out`.
void CollectSlots(const ScalarPtr& s, std::set<int>* out);

/// Returns a copy of `s` with each column slot i replaced by remap(i).
/// remap returning a negative value is a caller bug (asserted).
ScalarPtr RemapSlots(const ScalarPtr& s, const std::function<int(int)>& remap);

/// Returns a copy of `s` with each column slot i replaced by the scalar
/// substitution[i] (composition, used by project-collapse).
ScalarPtr SubstituteSlots(const ScalarPtr& s,
                          const std::vector<ScalarPtr>& substitution);

/// True if the scalar contains any $$ access parameter.
bool HasAccessParam(const ScalarPtr& s);

/// Returns a copy with access parameter `name` replaced by literal `v`.
ScalarPtr BindAccessParam(const ScalarPtr& s, const std::string& name,
                          const Value& v);

/// Renders the scalar for debugging: slots print as $<i> or, when
/// `slot_names` is provided, as their names.
std::string ScalarToString(const ScalarPtr& s,
                           const std::vector<std::string>* slot_names = nullptr);

// ---------------------------------------------------------------------------
// Evaluation (SQL semantics, 3-valued logic)
// ---------------------------------------------------------------------------

/// Evaluates `s` against `row` (slot i = row[i]). Division by zero and type
/// mismatches yield ExecutionError. Unresolved access parameters yield
/// InvalidArgument.
Result<Value> EvalScalar(const ScalarPtr& s, const Row& row);

// Value-level kernels shared by the row-at-a-time evaluator above and the
// batched (column-at-a-time) evaluator in exec/. Keeping them here is what
// guarantees the two engines agree on SQL semantics.

/// Applies one non-logical binary operator (comparison, LIKE, arithmetic) to
/// already-computed operands. AND/OR are excluded: their short-circuit
/// structure lives in the expression walkers.
Result<Value> EvalBinaryValues(sql::BinOp op, const Value& a, const Value& b);

/// Applies a unary operator to an already-computed operand.
Result<Value> EvalUnaryValue(sql::UnOp op, const Value& v);

/// Truth of a value in boolean context (nullopt = UNKNOWN). Non-boolean
/// values coerce: nonzero numerics and non-empty strings are true.
std::optional<bool> SqlTruth(const Value& v);

/// Wraps tri-state truth back into a Value (UNKNOWN -> NULL).
Value ValueFromTruth(std::optional<bool> t);

/// SQL LIKE with % and _ wildcards.
bool SqlLike(const std::string& text, const std::string& pattern);

/// Evaluates a predicate: true only when the scalar evaluates to TRUE
/// (UNKNOWN/NULL filters out, per SQL WHERE semantics).
Result<bool> EvalPredicate(const ScalarPtr& s, const Row& row);

/// Accumulator for one aggregate expression (shared by the reference
/// evaluator and the physical hash-aggregate operator).
class AggAccumulator {
 public:
  explicit AggAccumulator(const AggExpr& agg);

  /// Feeds one input row (evaluates the argument as needed).
  Status Add(const Row& row);

  /// Feeds one already-evaluated argument value (batched callers evaluate
  /// the argument column-at-a-time). For kCountStar the value is ignored.
  Status AddValue(const Value& v);

  /// Folds another accumulator over the SAME aggregate expression into this
  /// one (parallel partial aggregation). DISTINCT aggregates replay the
  /// other side's seen-set through AddValue so cross-partition duplicates
  /// are still eliminated.
  Status Merge(const AggAccumulator& other);

  /// Final value (NULL for empty SUM/AVG/MIN/MAX, 0 for COUNT).
  Value Finish() const;

 private:
  const AggExpr& agg_;
  int64_t count_ = 0;
  bool any_ = false;
  bool sum_is_double_ = false;
  int64_t sum_int_ = 0;
  double sum_double_ = 0.0;
  Value min_, max_;
  std::vector<Value> distinct_seen_;  // sorted-insert small-set
};

}  // namespace fgac::algebra

#endif  // FGAC_ALGEBRA_SCALAR_H_
