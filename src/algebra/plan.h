#ifndef FGAC_ALGEBRA_PLAN_H_
#define FGAC_ALGEBRA_PLAN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/scalar.h"
#include "common/value.h"

namespace fgac::algebra {

struct Plan;
/// Logical plans are immutable and shared; rewrites build new nodes.
using PlanPtr = std::shared_ptr<const Plan>;

enum class PlanKind {
  kGet,        // scan of a base table
  kValues,     // literal rows
  kSelect,     // filter by a conjunction of predicates
  kProject,    // compute output expressions
  kJoin,       // inner join (empty predicate list = cross product)
  kAggregate,  // grouping + aggregate functions
  kDistinct,   // duplicate elimination
  kSort,       // ORDER BY (presentation only)
  kLimit,      // first-n
  kUnionAll,   // bag union
};

struct SortItem {
  ScalarPtr expr;  // over child output slots
  bool descending = false;
};

/// A logical plan node. Column references inside scalars are positional
/// against the concatenated child outputs (for kJoin: left slots first).
/// `output_names` on kProject/kAggregate are display metadata and are NOT
/// part of the node's structural identity.
struct Plan {
  PlanKind kind = PlanKind::kGet;
  std::vector<PlanPtr> children;

  // kGet
  std::string table;
  std::vector<std::string> get_columns;

  // kValues
  std::vector<Row> rows;
  size_t values_arity = 0;

  // kSelect / kJoin: conjuncts in canonical order.
  std::vector<ScalarPtr> predicates;

  // kProject
  std::vector<ScalarPtr> exprs;

  // kAggregate
  std::vector<ScalarPtr> group_by;
  std::vector<AggExpr> aggs;

  // kProject / kAggregate display names (group cols then agg cols).
  std::vector<std::string> output_names;

  // kSort
  std::vector<SortItem> sort_items;

  // kLimit
  int64_t limit = 0;
};

PlanPtr MakeGet(std::string table, std::vector<std::string> columns);
PlanPtr MakeValues(std::vector<Row> rows, size_t arity);
/// Returns `child` unchanged when `predicates` is empty.
PlanPtr MakeSelect(std::vector<ScalarPtr> predicates, PlanPtr child);
PlanPtr MakeProject(std::vector<ScalarPtr> exprs,
                    std::vector<std::string> output_names, PlanPtr child);
PlanPtr MakeJoin(std::vector<ScalarPtr> predicates, PlanPtr left, PlanPtr right);
PlanPtr MakeAggregate(std::vector<ScalarPtr> group_by, std::vector<AggExpr> aggs,
                      std::vector<std::string> output_names, PlanPtr child);
PlanPtr MakeDistinct(PlanPtr child);
PlanPtr MakeSort(std::vector<SortItem> items, PlanPtr child);
PlanPtr MakeLimit(int64_t limit, PlanPtr child);
PlanPtr MakeUnionAll(std::vector<PlanPtr> children);

/// Number of output columns.
size_t OutputArity(const Plan& plan);

/// Display column names (positional).
std::vector<std::string> OutputNames(const Plan& plan);

/// Indented multi-line rendering for debugging and EXPLAIN-style output.
std::string PlanToString(const PlanPtr& plan, int indent = 0);

/// True if any scalar in the plan tree contains a $$ access parameter.
bool PlanHasAccessParam(const PlanPtr& plan);

/// Binds every $$ access parameter named in `bindings` to its concrete
/// value, returning a fresh tree (shared scalar subtrees without params are
/// reused). This is how a parameterized plan — bound once at PREPARE or
/// view-instantiation time — is specialized per execution; parameters not
/// named in `bindings` survive for a later pass.
PlanPtr BindPlanParams(const PlanPtr& plan,
                       const std::map<std::string, Value>& bindings);

/// Collects the distinct access-parameter names remaining in the tree.
std::vector<std::string> CollectPlanParams(const PlanPtr& plan);

}  // namespace fgac::algebra

#endif  // FGAC_ALGEBRA_PLAN_H_
