#ifndef FGAC_ALGEBRA_NORMALIZE_H_
#define FGAC_ALGEBRA_NORMALIZE_H_

#include <vector>

#include "algebra/plan.h"
#include "algebra/scalar.h"

namespace fgac::algebra {

/// Normalizes a scalar to a canonical form so that semantically identical
/// predicates written differently compare structurally equal:
///  * constant subexpressions are folded (unless evaluation would error),
///  * commutative operators (=, <>, +, *, OR, AND) order operands by
///    fingerprint,
///  * `>` / `>=` are rewritten to `<` / `<=` with swapped operands,
///  * double negation is removed, NOT is pushed over comparisons.
ScalarPtr NormalizeScalar(const ScalarPtr& s);

/// Flattens the AND-tree of `s` into normalized conjuncts, sorted by
/// fingerprint and deduplicated. A null scalar yields an empty list.
std::vector<ScalarPtr> SplitConjuncts(const ScalarPtr& s);

/// Normalizes a conjunct list: normalizes each element, re-splits nested
/// ANDs, sorts, dedups. TRUE literals are dropped.
std::vector<ScalarPtr> NormalizePredicates(std::vector<ScalarPtr> preds);

/// Rebuilds a single predicate from conjuncts (TRUE literal when empty).
ScalarPtr ConjoinPredicates(const std::vector<ScalarPtr>& preds);

/// Normalizes a plan tree bottom-up:
///  * all embedded scalars normalized, predicate lists canonicalized,
///  * Select-over-Select merged, empty Select dropped,
///  * identity Project (slot i -> column i, same arity) dropped,
///  * Project-over-Project collapsed.
PlanPtr NormalizePlan(const PlanPtr& plan);

}  // namespace fgac::algebra

#endif  // FGAC_ALGEBRA_NORMALIZE_H_
