// Experiment E2 — Section 3.3's behavioural claims, quantified.
//
// For a population of students, compare the answer each enforcement mode
// gives to the Section 3.3 queries, and report how often the Truman model
// silently returns a value different from the truth ("misleading answers")
// versus how often the Non-Truman model answers (always truthfully) or
// rejects.
//
// Expected shape: Truman answers 100% of the queries but a large fraction
// are wrong; Non-Truman never returns a wrong answer.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/workload.h"

namespace {

using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

struct Answer {
  bool answered = false;
  double value = 0.0;
};

Answer Ask(Database& db, const SessionContext& ctx, const std::string& sql) {
  auto result = db.Execute(sql, ctx);
  Answer a;
  if (!result.ok() || result.value().relation.num_rows() == 0) return a;
  const fgac::Value& v = result.value().relation.rows()[0][0];
  if (!v.is_numeric()) return a;
  a.answered = true;
  a.value = v.AsDouble();
  return a;
}

}  // namespace

int main() {
  Database db;
  fgac::bench::UniversityScale scale;
  scale.students = 300;
  scale.courses = 20;
  fgac::bench::LoadScaledUniversity(&db, scale);
  fgac::bench::CreateStandardViews(&db);
  if (!db.catalog().SetTrumanView("grades", "mygrades").ok()) return 1;
  // Grant the paper's student views to everyone (public).
  if (!db.ExecuteScript("grant select on mygrades to public;"
                        "grant select on avggrades to public")
           .ok()) {
    return 1;
  }

  const std::vector<std::pair<std::string, std::string>> queries = {
      {"overall avg", "select avg(grade) from grades"},
      {"course avg",
       "select avg(grade) from grades where course-id = 'c7'"},
      {"own avg", "select avg(grade) from grades where student-id = '$SID'"},
      {"max grade", "select max(grade) from grades"},
      {"graded rows", "select count(*) from grades"},
  };

  int users = 50;
  std::printf("E2 / Section 3.3: answer quality per mode over %d users\n\n",
              users);
  std::printf("%-12s | %22s | %22s\n", "query",
              "TRUMAN ans/wrong", "NON-TRUMAN ans/wrong/rej");
  std::printf("%s\n", std::string(64, '-').c_str());

  for (const auto& [label, tmpl] : queries) {
    int truman_answered = 0, truman_wrong = 0;
    int nt_answered = 0, nt_wrong = 0, nt_rejected = 0;
    for (int u = 0; u < users; ++u) {
      std::string sid = "s" + std::to_string(u);
      std::string sql = tmpl;
      size_t pos = sql.find("$SID");
      if (pos != std::string::npos) sql.replace(pos, 4, sid);

      SessionContext none(sid), truman(sid), nt(sid);
      none.set_mode(EnforcementMode::kNone);
      truman.set_mode(EnforcementMode::kTruman);
      nt.set_mode(EnforcementMode::kNonTruman);

      Answer truth = Ask(db, none, sql);
      Answer t = Ask(db, truman, sql);
      Answer n = Ask(db, nt, sql);
      if (t.answered) {
        ++truman_answered;
        if (!truth.answered || std::fabs(t.value - truth.value) > 1e-9) {
          ++truman_wrong;
        }
      }
      if (n.answered) {
        ++nt_answered;
        if (!truth.answered || std::fabs(n.value - truth.value) > 1e-9) {
          ++nt_wrong;
        }
      } else {
        ++nt_rejected;
      }
    }
    std::printf("%-12s | %10d/%-10d | %10d/%d/%d\n", label.c_str(),
                truman_answered, truman_wrong, nt_answered, nt_wrong,
                nt_rejected);
    fgac::bench::EmitJsonLine(
        "truman_pitfalls/" + label, 0.0, 0.0,
        ",\"truman_wrong\":" + std::to_string(truman_wrong) +
            ",\"non_truman_wrong\":" + std::to_string(nt_wrong) +
            ",\"non_truman_rejected\":" + std::to_string(nt_rejected));
  }
  std::printf(
      "\nShape check (paper Section 3.3): the Truman column shows silent\n"
      "wrong answers on population-level queries; the Non-Truman 'wrong'\n"
      "count must be 0 — it rejects instead of misleading, and answers\n"
      "course/own averages correctly via AvgGrades/MyGrades.\n");
  return 0;
}
