#!/usr/bin/env python3
"""Bench regression gate: compare a BENCH_RESULTS.json against a baseline.

Usage:
    bench/check_regression.py RESULTS.json BASELINE.jsonl [options]

RESULTS.json is the aggregate written by bench/run_all.sh; BASELINE.jsonl
is a JSON-lines file of {"name": ..., "ns_per_op": ...} entries (the
checked-in bench/seed_baseline.jsonl, or a previous run's raw lines).

A benchmark REGRESSES when its ns_per_op exceeds baseline * --tolerance.
Shared CI runners are noisy, so the default tolerance is deliberately
loose (2.0x): the gate exists to catch algorithmic cliffs (accidental
O(n^2), a dropped cache, serial fallback), not 10% jitter. Benchmarks
missing from the baseline are reported but never fail the gate; a results
file that matches fewer than --min-matches baseline entries fails it,
because an empty comparison would otherwise read as a pass. --require NAME
(repeatable) fails the gate unless NAME was actually compared — pinning a
benchmark so it cannot silently vanish from the sweep or the baseline.

Exit codes: 0 ok, 1 regression (or too few matches), 2 usage/IO error.
"""

import argparse
import json
import re
import sys


def read_results(path):
    with open(path) as f:
        doc = json.load(f)
    entries = doc.get("benchmarks", doc if isinstance(doc, list) else [])
    return [e for e in entries if e.get("name") and e.get("ns_per_op")]


def read_baseline(path):
    out = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if entry.get("name") and entry.get("ns_per_op"):
                out[entry["name"]] = entry
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("results")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=2.0,
                    help="fail when ns_per_op > baseline * TOLERANCE "
                         "(default: %(default)s)")
    ap.add_argument("--only", default="",
                    help="regex: gate only benchmark names matching it")
    ap.add_argument("--min-matches", type=int, default=1,
                    help="fail unless at least this many benchmarks were "
                         "compared (default: %(default)s)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="fail unless this benchmark name was compared "
                         "against the baseline (repeatable)")
    ap.add_argument("--markdown-summary", default="", metavar="PATH",
                    help="also write the comparison as a GitHub-flavored "
                         "markdown delta table (for $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args()

    if args.tolerance <= 0:
        print("error: --tolerance must be positive", file=sys.stderr)
        return 2
    try:
        results = read_results(args.results)
        baseline = read_baseline(args.baseline)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    name_re = re.compile(args.only) if args.only else None
    compared = 0
    compared_names = set()
    regressions = []
    unmatched = []
    rows = []
    for entry in results:
        name = entry["name"]
        if name_re and not name_re.search(name):
            continue
        base = baseline.get(name)
        if base is None:
            unmatched.append(name)
            continue
        compared += 1
        compared_names.add(name)
        ratio = entry["ns_per_op"] / base["ns_per_op"]
        verdict = "REGRESSED" if ratio > args.tolerance else "ok"
        print(f"{verdict:>9}  {name}: {entry['ns_per_op']:.0f} ns/op "
              f"vs baseline {base['ns_per_op']:.0f} ({ratio:.2f}x)")
        rows.append((name, entry["ns_per_op"], base["ns_per_op"], ratio,
                     verdict))
        if ratio > args.tolerance:
            regressions.append((name, ratio))

    for name in unmatched:
        print(f"   no-base  {name}: not in baseline, skipped")

    print(f"\ncompared {compared} benchmark(s), "
          f"{len(regressions)} regression(s), tolerance {args.tolerance}x")
    if args.markdown_summary:
        with open(args.markdown_summary, "w") as f:
            f.write("### Bench gate vs seed baseline "
                    f"(tolerance {args.tolerance}x)\n\n")
            f.write("| benchmark | ns/op | baseline | delta | verdict |\n")
            f.write("|---|---:|---:|---:|---|\n")
            for name, ns, base_ns, ratio, verdict in rows:
                delta = (ratio - 1.0) * 100.0
                mark = ":x:" if verdict == "REGRESSED" else ":white_check_mark:"
                f.write(f"| `{name}` | {ns:,.0f} | {base_ns:,.0f} "
                        f"| {delta:+.1f}% | {mark} {verdict} |\n")
            for name in unmatched:
                f.write(f"| `{name}` | — | — | — | no baseline |\n")
    missing = [n for n in args.require if n not in compared_names]
    if missing:
        print(f"error: required benchmark(s) not compared: "
              f"{', '.join(missing)} — absent from the results or the "
              f"baseline", file=sys.stderr)
        return 1
    if compared < args.min_matches:
        print(f"error: only {compared} benchmark(s) matched the baseline "
              f"(need {args.min_matches}); gate cannot pass vacuously",
              file=sys.stderr)
        return 1
    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"error: perf regression — worst is {worst[0]} "
              f"at {worst[1]:.2f}x baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
