// Experiment E10 — the paper's worked examples as an acceptance matrix:
// every example from Sections 1-6 (Examples 4.1-4.4, 5.1-5.5, the Section
// 3.3 pitfall queries, Section 6 access patterns), the verdict our engine
// reaches, which inference rule testified, and the checking latency.
//
// This is the qualitative "evaluation table" the paper itself never ran
// ("We intend to carry out performance tests subsequently"): a regression
// matrix showing each rule of Section 5 firing on its motivating example.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_report.h"
#include "bench/workload.h"

namespace {

using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

struct CaseSpec {
  const char* id;
  const char* user;
  const char* sql;
  const char* expect;  // "U" unconditional, "C" conditional, "R" reject
};

}  // namespace

int main() {
  Database db;
  fgac::Status setup = db.ExecuteScript(R"sql(
    create table students (
      student-id varchar not null primary key,
      name varchar not null, type varchar not null);
    create table courses (
      course-id varchar not null primary key, name varchar not null);
    create table registered (
      student-id varchar not null references students,
      course-id varchar not null references courses,
      primary key (student-id, course-id));
    create table grades (
      student-id varchar not null references students,
      course-id varchar not null references courses,
      grade double not null, primary key (student-id, course-id));
    create table feespaid (student-id varchar not null primary key);

    insert into students values
      ('11','alice','fulltime'), ('12','bob','fulltime'),
      ('13','carol','parttime'), ('14','dave','parttime');
    insert into courses values
      ('cs101','intro'), ('cs202','db'), ('ee150','circuits');
    insert into registered values
      ('11','cs101'), ('11','cs202'), ('12','cs101'), ('12','ee150'),
      ('13','cs202'), ('14','ee150');
    insert into grades values
      ('11','cs101',4.0), ('12','cs101',3.0), ('11','cs202',3.5),
      ('13','cs202',2.0);
    insert into feespaid values ('11'), ('12');

    create inclusion dependency every_student_registered
      on students (student-id) references registered (student-id);
    create inclusion dependency fulltime_registered
      on students (student-id) where type = 'fulltime'
      references registered (student-id);
    create inclusion dependency feespaid_registered
      on feespaid (student-id) references registered (student-id);

    create authorization view mygrades as
      select * from grades where student-id = $user-id;
    create authorization view costudentgrades as
      select grades.* from grades, registered
      where registered.student-id = $user-id
        and grades.course-id = registered.course-id;
    create authorization view myregistrations as
      select * from registered where student-id = $user-id;
    create authorization view avggrades as
      select course-id, avg(grade) from grades group by course-id;
    create authorization view lcavggrades as
      select course-id, avg(grade) from grades
      group by course-id having count(*) >= 2;
    create authorization view regstudents as
      select registered.course-id, students.name, students.type
      from registered, students
      where students.student-id = registered.student-id;
    create authorization view regstudentsfull as
      select students.*, registered.course-id from registered, students
      where students.student-id = registered.student-id;
    create authorization view allfees as select * from feespaid;
    create authorization view singlegrade as
      select * from grades where student-id = $$1;

    grant select on mygrades to 11;
    grant select on costudentgrades to 11;
    grant select on myregistrations to 11;
    grant select on regstudentsfull to 11;
    grant select on allfees to 11;
    grant select on regstudents to u51;
    grant select on avggrades to agguser;
    grant select on lcavggrades to lcuser;
    grant select on singlegrade to secretary;
  )sql");
  if (!setup.ok()) {
    std::printf("setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }

  const CaseSpec cases[] = {
      {"S1:   own rows (MyGrades)", "11",
       "select * from grades where student-id = '11'", "U"},
      {"S5.2: projection+selection", "11",
       "select course-id from grades where student-id = '11' and grade = 4.0",
       "U"},
      {"E4.1a: own average", "11",
       "select avg(grade) from grades where student-id = '11'", "U"},
      {"E4.1b: course avg via AvgGrades", "agguser",
       "select avg(grade) from grades where course-id = 'cs101'", "U"},
      {"E4.2a: large course via LCAvg", "lcuser",
       "select avg(grade) from grades where course-id = 'cs101'", "C"},
      {"E4.2b: small/empty course", "lcuser",
       "select avg(grade) from grades where course-id = 'ee150'", "R"},
      {"E4.3:  co-student w/o reg-visibility", "lcuser",
       "select * from grades where course-id = 'cs101'", "R"},
      {"E4.4:  co-student grades (C3a/C3b)", "11",
       "select * from grades where course-id = 'cs101'", "C"},
      {"E5.5:  distinct dropped via PK", "11",
       "select distinct * from grades where course-id = 'cs101'", "C"},
      {"E5.1:  distinct names (U3a)", "u51",
       "select distinct name, type from students", "U"},
      {"E5.1b: without distinct (view w/o key)", "u51",
       "select name, type from students", "R"},
      {"E5.1c: key-exposing view recovers mult.", "11",
       "select name, type from students", "U"},
      {"E5.3:  full-time filter (cond. dep)", "u51",
       "select distinct name from students where students.type = 'fulltime'",
       "U"},
      {"E5.4:  fees join (join introduction)", "11",
       "select distinct name from students, feespaid "
       "where students.student-id = feespaid.student-id",
       "U"},
      {"S3.3:  global average", "11", "select avg(grade) from grades", "R"},
      {"S6a:   access pattern keyed", "secretary",
       "select * from grades where student-id = '12'", "U"},
      {"S6b:   access pattern unkeyed", "secretary", "select * from grades",
       "R"},
  };

  std::printf("E10: the paper's worked examples — verdicts and rules\n\n");
  std::printf("%-38s | %-6s | %-6s | %8s | %s\n", "example (paper section)",
              "expect", "got", "ms", "rule");
  std::printf("%s\n", std::string(110, '-').c_str());
  int mismatches = 0;
  for (const CaseSpec& c : cases) {
    SessionContext ctx(c.user);
    ctx.set_mode(EnforcementMode::kNonTruman);
    auto start = std::chrono::steady_clock::now();
    auto report = db.CheckQueryValidity(c.sql, ctx);
    auto end = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(end - start).count();
    std::string got = "ERR", rule;
    if (report.ok()) {
      if (!report.value().valid) {
        got = "R";
      } else {
        got = report.value().unconditional ? "U" : "C";
        rule = report.value().justification;
      }
    }
    bool match = got == c.expect;
    if (!match) ++mismatches;
    std::printf("%-38s | %-6s | %-6s | %8.2f | %s%s\n", c.id, c.expect,
                got.c_str(), ms, rule.c_str(), match ? "" : "   <-- MISMATCH");
    fgac::bench::EmitJsonLine(std::string("rule_matrix/") + c.id, ms * 1e6,
                              0.0,
                              std::string(",\"match\":") +
                                  (match ? "true" : "false"));
  }
  std::printf("\n%d mismatch(es) against the paper's expected verdicts.\n",
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
