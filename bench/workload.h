#ifndef FGAC_BENCH_WORKLOAD_H_
#define FGAC_BENCH_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/database.h"

namespace fgac::bench {

/// Scale knobs for the synthetic university workload (the paper's running
/// example scaled up).
struct UniversityScale {
  int students = 1000;
  int courses = 50;
  int registrations_per_student = 4;
  /// Fraction of registrations that already have a grade.
  double graded_fraction = 0.75;
};

/// Creates the university schema (students/courses/registered/grades with
/// PKs and FKs) and loads `scale` rows deterministically from `seed`.
/// Student ids are "s0".."sN", course ids "c0".."cM".
void LoadScaledUniversity(core::Database* db, const UniversityScale& scale,
                          uint32_t seed = 42);

/// Creates the paper's authorization views (mygrades, costudentgrades,
/// myregistrations, avggrades, regstudents) without granting them.
void CreateStandardViews(core::Database* db);

/// Creates `count` additional authorization views over grades
/// (synthview_0..synthview_{count-1}), each selecting a different course
/// slice, and grants all of them to `user`. Used to sweep the number of
/// available views (experiments E4/E5).
void CreateSyntheticViews(core::Database* db, int count,
                          const std::string& user);

/// A chain join  SELECT * FROM t0, ..., t{n-1} WHERE t0.k=t1.k AND ...
/// over `n` distinct two-column tables (created in `db` if absent).
/// Returns the SQL text. Used for the Figure 1 experiment.
std::string ChainJoinQuery(core::Database* db, int n);

/// Authorization views from which ChainJoinQuery(n) is provably valid:
/// one pairwise view per (bt2i ⋈ bt2i+1) plus a whole-table view over the
/// last table when `n` is odd (created in `db` if absent). Returns the
/// view names. Used for the goal-directed validity-search experiment.
std::vector<std::string> CreateChainPairViews(core::Database* db, int n);

/// Milliseconds elapsed by `fn` averaged over `iters` runs.
double TimeMs(int iters, const std::function<void()>& fn);

}  // namespace fgac::bench

#endif  // FGAC_BENCH_WORKLOAD_H_
