// Experiment E18 — the cost of live introspection.
//
// PR 10's observability layer is always on: every statement registers in
// the ActivityRegistry (fgac_sessions / fgac_activity), stamps its phase
// and guard charges, and every metric write also lands in the sliding
// 10s/1m/5m windows. This bench prices that layer against the
// bench_prepared steady-state workload two ways:
//
//   1. Per-statement share: microbench the exact always-on primitives a
//      steady-state statement performs (one BeginStatement/EndStatement
//      round trip with its phase/guard stamps, plus the statement's
//      bundle of windowed counter increments and histogram records), then
//      divide by the measured steady-state statement latency. This is the
//      "always-on activity/window layer costs <1%" claim, and it is
//      noise-robust: both numerator and denominator come from the same
//      process on the same machine.
//   2. Observer pressure: re-run the same closed loop while a monitoring
//      thread hammers registry snapshots, Prometheus exposition, and the
//      governed fgac_sessions table the way a 1s-scrape operator setup
//      would (much harder than reality: no sleep between scrapes). A
//      loose tripwire (observed <= 1.25x unobserved) catches a refresh
//      path that starts blocking the workload.
//
// Self-gates (exit 1): all executions succeed; the per-statement share
// stays under 1%; the observed loop stays within the tripwire. The
// regression gate is bench/check_regression.py --require
// introspection_overhead_pct against the seed baseline, which CI enforces.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "bench/workload.h"
#include "common/activity.h"
#include "common/metrics.h"
#include "core/database.h"
#include "server/connection_manager.h"

namespace {

using Clock = std::chrono::steady_clock;
using fgac::bench::EmitJsonLine;
using fgac::bench::LoadScaledUniversity;
using fgac::bench::UniversityScale;
using fgac::common::ActivityRegistry;
using fgac::common::MetricsRegistry;
using fgac::common::StatementActivity;
using fgac::common::StatementPhase;
using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::server::ConnectionManager;
using fgac::server::Session;

constexpr int kSessions = 8;
constexpr int kPrincipals = 4;
constexpr int kItersPerSession = 200;
constexpr int kCourses = 8;

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  UniversityScale scale;
  scale.students = 2000;
  scale.courses = 40;
  LoadScaledUniversity(db.get(), scale);
  if (!db->ExecuteAsAdmin(
             "create authorization view mygrades as "
             "select student-id, course-id, grade from grades "
             "where student-id = $user-id")
           .ok() ||
      !db->catalog().SetTrumanView("grades", "mygrades").ok()) {
    std::fprintf(stderr, "setup failed\n");
    std::exit(1);
  }
  for (int p = 0; p < kPrincipals; ++p) {
    std::string user = "s" + std::to_string(p);
    if (!db->ExecuteAsAdmin("grant select on mygrades to " + user).ok()) {
      std::fprintf(stderr, "grant failed for %s\n", user.c_str());
      std::exit(1);
    }
  }
  return db;
}

struct LoopResult {
  double mean_us = 0;
  double p99_us = 0;
  uint64_t executed = 0;
  int errors = 0;
};

/// The bench_prepared steady-state closed loop: 8 Non-Truman sessions
/// re-EXECUTE a prepared own-rows statement, every execution a
/// statement-cache hit.
LoopResult RunClosedLoop(Database* db) {
  ConnectionManager cm(*db);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < kSessions; ++i) {
    auto s = cm.Open("s" + std::to_string(i % kPrincipals),
                     EnforcementMode::kNonTruman);
    auto p = s->Execute(
        "prepare q as select grade from grades "
        "where student-id = $user-id and course-id = $1");
    if (!p.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   p.status().ToString().c_str());
      std::exit(1);
    }
    sessions.push_back(std::move(s));
  }
  auto arg = [](int j) {
    return "execute q ('c" + std::to_string(j % kCourses) + "')";
  };
  for (auto& s : sessions) {
    for (int j = 0; j < kCourses; ++j) {
      auto r = s->Execute(arg(j));
      if (!r.ok()) {
        std::fprintf(stderr, "warm-up failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
    }
  }

  std::mutex mu;
  std::vector<uint64_t> all_us;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      std::vector<uint64_t> local_us;
      local_us.reserve(kItersPerSession);
      for (int j = 0; j < kItersPerSession; ++j) {
        Clock::time_point q0 = Clock::now();
        auto r = sessions[static_cast<size_t>(i)]->Execute(arg(j));
        Clock::time_point q1 = Clock::now();
        if (!r.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        local_us.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(q1 - q0)
                .count()));
      }
      std::lock_guard<std::mutex> lock(mu);
      all_us.insert(all_us.end(), local_us.begin(), local_us.end());
    });
  }
  for (std::thread& t : threads) t.join();

  LoopResult res;
  res.executed = all_us.size();
  res.errors = errors.load();
  if (!all_us.empty()) {
    std::sort(all_us.begin(), all_us.end());
    for (uint64_t v : all_us) res.mean_us += static_cast<double>(v);
    res.mean_us /= static_cast<double>(all_us.size());
    size_t idx = static_cast<size_t>(0.99 * static_cast<double>(all_us.size()));
    res.p99_us = static_cast<double>(all_us[std::min(idx, all_us.size() - 1)]);
  }
  cm.CloseAll();
  return res;
}

/// Per-statement cost of the activity registry: one statement lifecycle
/// with the stamps the real statement path performs (phase transitions,
/// guard charges, admission wait, pipeline progress).
double RegistryNsPerStatement() {
  ActivityRegistry reg;
  reg.OpenSession("bench", "s0");
  constexpr int kOps = 200000;
  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < kOps; ++i) {
    std::shared_ptr<StatementActivity> act = reg.BeginStatement(
        "bench", "s0", "execute q ('c1')");
    act->set_admission_wait_us(3);
    act->set_phase(StatementPhase::kValidity);
    act->StampGuard(16, 1024);
    act->set_phase(StatementPhase::kExec);
    act->progress().sets_total.fetch_add(1, std::memory_order_relaxed);
    act->progress().sets_done.fetch_add(1, std::memory_order_relaxed);
    act->StampGuard(32, 2048);
    act->set_phase(StatementPhase::kFinished);
    reg.EndStatement(act);
  }
  double ns = std::chrono::duration_cast<std::chrono::duration<double>>(
                  Clock::now() - t0)
                  .count() *
              1e9 / kOps;
  reg.CloseSession("bench");
  return ns;
}

/// Per-statement cost of the windowed metric writes: the counter/histogram
/// bundle a steady-state prepared execution performs (queries.total,
/// queries.select, cache hit counters, latency histograms) — all through
/// the production Increment()/Record() calls, windows included.
double WindowNsPerStatement() {
  MetricsRegistry metrics;
  auto& c1 = metrics.counter("queries.total");
  auto& c2 = metrics.counter("queries.select");
  auto& c3 = metrics.counter("statement_cache.hits");
  auto& c4 = metrics.counter("validity_cache.hits");
  auto& h1 = metrics.histogram("prepared.execute_us");
  auto& h2 = metrics.histogram("exec.run_us");
  auto& h3 = metrics.histogram("validity.check_us");
  constexpr int kOps = 200000;
  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < kOps; ++i) {
    c1.Increment();
    c2.Increment();
    c3.Increment();
    c4.Increment();
    h1.Record(static_cast<uint64_t>(200 + (i & 255)));
    h2.Record(static_cast<uint64_t>(100 + (i & 127)));
    h3.Record(static_cast<uint64_t>(50 + (i & 63)));
  }
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             Clock::now() - t0)
             .count() *
         1e9 / kOps;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::unique_ptr<Database> db = MakeDb();

  // Unobserved steady state: the always-on layer runs (it cannot be
  // compiled out), but nobody is scraping.
  LoopResult unobserved = RunClosedLoop(db.get());
  EmitJsonLine("introspection_unobserved_p99", unobserved.p99_us * 1000.0);
  std::printf("unobserved: mean %.0fus p99 %.0fus over %llu executions\n",
              unobserved.mean_us, unobserved.p99_us,
              static_cast<unsigned long long>(unobserved.executed));

  // Observed steady state: a no-sleep monitoring loop — registry
  // snapshots, full Prometheus exposition, and the governed system table
  // (which re-materializes fgac_sessions/fgac_activity under the refresh
  // mutex) — runs against the same workload.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread observer([&] {
    fgac::core::SessionContext admin("admin");
    admin.set_mode(EnforcementMode::kNone);
    while (!stop.load(std::memory_order_acquire)) {
      (void)db->activity().SnapshotSessions();
      (void)db->activity().SnapshotStatements();
      std::string prom = db->ExportMetricsPrometheus();
      if (prom.empty()) std::fprintf(stderr, "empty exposition\n");
      auto r = db->Execute("select * from fgac_sessions", admin);
      if (!r.ok()) {
        std::fprintf(stderr, "observer query failed: %s\n",
                     r.status().ToString().c_str());
      }
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  LoopResult observed = RunClosedLoop(db.get());
  stop.store(true, std::memory_order_release);
  observer.join();
  EmitJsonLine("introspection_observed_p99", observed.p99_us * 1000.0);
  std::printf("observed:   mean %.0fus p99 %.0fus (%llu scrapes alongside)\n",
              observed.mean_us, observed.p99_us,
              static_cast<unsigned long long>(scrapes.load()));

  // The always-on layer, priced per statement.
  double registry_ns = RegistryNsPerStatement();
  double window_ns = WindowNsPerStatement();
  double layer_ns = registry_ns + window_ns;
  double statement_ns = unobserved.mean_us * 1000.0;
  double overhead_pct =
      statement_ns > 0 ? layer_ns / statement_ns * 100.0 : 100.0;
  char extra[200];
  std::snprintf(extra, sizeof(extra),
                ",\"overhead_pct\":%.4f,\"registry_ns\":%.1f,"
                "\"window_ns\":%.1f,\"statement_ns\":%.0f",
                overhead_pct, registry_ns, window_ns, statement_ns);
  EmitJsonLine("introspection_overhead_pct", layer_ns, 0.0, extra);
  std::printf(
      "always-on layer: registry %.0fns + windows %.0fns = %.0fns per "
      "statement -> %.3f%% of a %.0fus steady-state execution\n",
      registry_ns, window_ns, layer_ns, overhead_pct, statement_ns / 1000.0);

  // Self-gates.
  int failures = 0;
  if (unobserved.errors + observed.errors > 0) {
    std::fprintf(stderr, "GATE: %d executions failed\n",
                 unobserved.errors + observed.errors);
    ++failures;
  }
  if (overhead_pct >= 1.0) {
    std::fprintf(stderr,
                 "GATE: always-on introspection layer is %.3f%% of a "
                 "steady-state statement (budget < 1%%)\n",
                 overhead_pct);
    ++failures;
  }
  if (unobserved.mean_us > 0 &&
      observed.mean_us > 1.25 * unobserved.mean_us) {
    std::fprintf(stderr,
                 "GATE: observed steady state %.0fus > 1.25x unobserved "
                 "%.0fus — scraping is blocking the workload\n",
                 observed.mean_us, unobserved.mean_us);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
