// Experiment E9 — Section 6: access-pattern authorization views and
// dependent joins.
//
// Part 1 (acceptance matrix): which query shapes the $$-instantiation and
// dependent-join machinery admits for a clerk holding only
//   account_by_id = select * from accounts where account-id = $$acct.
//
// Part 2 (cost): validity-checking latency for access-pattern checking as
// the number of candidate constants in the query grows (instantiation
// tries each, Section 6's "set of all instantiated versions").

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_report.h"
#include "bench/workload.h"

namespace {

using fgac::bench::TimeMs;
using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

void Verdict(Database& db, const SessionContext& ctx, const char* label,
             const std::string& sql) {
  auto report = db.CheckQueryValidity(sql, ctx);
  const char* verdict = "ERROR";
  std::string detail;
  if (report.ok()) {
    verdict = report.value().valid ? "ACCEPT" : "reject";
    detail = report.value().valid ? report.value().justification : "";
  }
  std::printf("  %-34s | %-6s | %s\n", label, verdict, detail.c_str());
}

}  // namespace

int main() {
  Database db;
  fgac::Status setup = db.ExecuteScript(R"sql(
    create table customers (
      customer-id varchar not null primary key,
      name varchar not null);
    create table accounts (
      account-id varchar not null primary key,
      customer-id varchar not null references customers,
      balance double not null);
    create authorization view account_by_id as
      select * from accounts where account-id = $$acct;
    create authorization view all_customers as
      select * from customers;
    grant select on account_by_id to clerk;
    grant select on all_customers to clerk;
  )sql");
  if (!setup.ok()) {
    std::printf("setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }
  // Data.
  for (int i = 0; i < 200; ++i) {
    std::string c = std::to_string(i);
    if (!db.ExecuteAsAdmin("insert into customers values ('c" + c + "', 'n" +
                           c + "')")
             .ok() ||
        !db.ExecuteAsAdmin("insert into accounts values ('a" + c + "', 'c" +
                           c + "', " + std::to_string(100 + i) + ".0)")
             .ok()) {
      return 1;
    }
  }

  SessionContext clerk("clerk");
  clerk.set_mode(EnforcementMode::kNonTruman);

  std::printf("E9 / Section 6: access-pattern views and dependent joins\n\n");
  std::printf("  %-34s | %-6s | justification\n", "query shape", "verd.");
  std::printf("  %s\n", std::string(76, '-').c_str());
  Verdict(db, clerk, "keyed lookup ($$ instantiation)",
          "select * from accounts where account-id = 'a17'");
  Verdict(db, clerk, "keyed lookup, projection",
          "select balance from accounts where account-id = 'a42'");
  // Known incompleteness (Section 5.5): an IN list is a union of keyed
  // lookups; admitting it needs a UNION-ALL rewriting our rule set (like
  // the paper's) does not include, so it is rejected although derivable.
  Verdict(db, clerk, "keyed IN list (incomplete: rejects)",
          "select balance from accounts where account-id in ('a1', 'a2')");
  Verdict(db, clerk, "dependent join (r valid, s keyed)",
          "select customers.name, accounts.balance from customers, accounts "
          "where accounts.account-id = customers.customer-id");
  Verdict(db, clerk, "full scan (must reject)", "select * from accounts");
  Verdict(db, clerk, "aggregate over all (must reject)",
          "select sum(balance) from accounts");
  Verdict(db, clerk, "unkeyed filter (must reject)",
          "select * from accounts where balance > 1000");

  // Part 2: instantiation cost vs number of candidate constants.
  std::printf("\n  checking cost vs candidate constants in the query:\n");
  std::printf("  %10s | %12s\n", "constants", "check ms");
  for (int k : {1, 4, 8, 16, 32}) {
    std::string in_list;
    for (int i = 0; i < k; ++i) {
      if (i > 0) in_list += ", ";
      in_list += "'a" + std::to_string(i) + "'";
    }
    std::string sql =
        "select balance from accounts where account-id in (" + in_list + ")";
    double ms = TimeMs(20, [&] {
      auto report = db.CheckQueryValidity(sql, clerk);
      if (!report.ok()) std::abort();
    });
    std::printf("  %10d | %12.3f\n", k, ms);
    fgac::bench::EmitJsonLine("access_pattern/in_list" + std::to_string(k),
                              ms * 1e6);
  }
  std::printf(
      "\nShape check: keyed shapes ACCEPT (rule U1 over instantiated views "
      "or the dependent-join rule);\nwhole-table shapes reject; checking "
      "cost grows with the candidate-constant count (bounded by the\n"
      "instantiation cap).\n");
  return 0;
}
