// Experiment E3 addendum — thread scaling of the morsel-driven executor.
//
// Execution phase only (parse/bind/optimize hoisted out of the loop): the
// same physical plan is run through ParallelExecutePlan at 1, 2 and 4
// threads. At 1 thread this is exactly the serial vectorized engine, so
// the 1-thread row is the baseline and the 2/4-thread rows are the
// speedup the shared morsel cursor buys on scan/filter/aggregate and
// shared-build hash-join pipelines.
//
// Numbers are only meaningful on a multi-core host; on a single-core CI
// runner the >1-thread rows measure scheduling overhead, not speedup.

#include <benchmark/benchmark.h>

#include <map>

#include "algebra/binder.h"
#include "bench/bench_report.h"
#include "bench/workload.h"
#include "exec/parallel.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

namespace {

using fgac::bench::LoadScaledUniversity;
using fgac::bench::UniversityScale;
using fgac::core::Database;

// Full scan + grouped aggregation over the biggest table.
constexpr const char* kAggQuery =
    "select course-id, avg(grade), count(*) from grades group by course-id";
// Equi-join (students x grades) with a selective filter; the optimizer
// pushes the key into the join so the parallel shared-build path runs.
constexpr const char* kJoinQuery =
    "select students.name, grades.grade from students, grades "
    "where students.student-id = grades.student-id and grades.grade >= 3.0";

Database* DbForScale(int students) {
  static std::map<int, Database*>* dbs = new std::map<int, Database*>();
  auto it = dbs->find(students);
  if (it == dbs->end()) {
    auto* db = new Database();
    UniversityScale scale;
    scale.students = students;
    scale.courses = 40;
    LoadScaledUniversity(db, scale);
    it = dbs->emplace(students, db).first;
  }
  return it->second;
}

void RunScaling(benchmark::State& state, const char* query) {
  Database* db = DbForScale(static_cast<int>(state.range(0)));
  const size_t threads = static_cast<size_t>(state.range(1));
  auto stmt = fgac::sql::Parser::ParseSelect(query);
  fgac::algebra::Binder binder(db->catalog(), {});
  auto plan = binder.BindSelect(*stmt.value());
  if (!plan.ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  auto row_count = [db](const std::string& table) -> double {
    const auto* t = db->state().GetTable(table);
    return t != nullptr ? static_cast<double>(t->num_rows()) : 0.0;
  };
  auto best = fgac::optimizer::Optimize(plan.value(),
                                        fgac::optimizer::ExpandOptions{},
                                        row_count);
  if (!best.ok()) {
    state.SkipWithError("optimize failed");
    return;
  }
  for (auto _ : state) {
    auto rel =
        fgac::exec::ParallelExecutePlan(best.value().plan, db->state(), threads);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rel.value().num_rows());
  }
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(threads));
  state.counters["rows"] = benchmark::Counter(
      static_cast<double>(db->state().GetTable("grades")->num_rows()));
}

void BM_ParallelAggScaling(benchmark::State& state) {
  RunScaling(state, kAggQuery);
}
void BM_ParallelJoinScaling(benchmark::State& state) {
  RunScaling(state, kJoinQuery);
}

}  // namespace

BENCHMARK(BM_ParallelAggScaling)
    ->Args({8000, 1})->Args({8000, 2})->Args({8000, 4})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ParallelJoinScaling)
    ->Args({8000, 1})->Args({8000, 2})->Args({8000, 4})
    ->Unit(benchmark::kMicrosecond);

FGAC_BENCHMARK_MAIN();
