// Experiment E6 — Section 5.6 optimization: "If the same query is reissued
// multiple times in a session, we can cache the results of the validity
// check"; for prepared statements "come up with a cheap test that is used
// each time the query is executed."
//
// Measures per-execution latency of a Non-Truman SELECT when the verdict
// is (a) recomputed every time, (b) served from the validity cache, and
// (c) not needed at all (enforcement off, lower bound).
//
// Expected shape: cached ≈ none + a hash lookup; uncached pays the full
// inference cost on every execution.

#include <benchmark/benchmark.h>

#include "bench/bench_report.h"
#include "bench/workload.h"

namespace {

using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

constexpr const char* kQuery =
    "select grade from grades where student-id = 's7'";

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    fgac::bench::UniversityScale scale;
    scale.students = 500;
    fgac::bench::LoadScaledUniversity(d, scale);
    fgac::bench::CreateStandardViews(d);
    if (!d->ExecuteScript("grant select on mygrades to public;"
                          "grant select on costudentgrades to public;"
                          "grant select on myregistrations to public")
             .ok()) {
      std::abort();
    }
    return d;
  }();
  return db;
}

void BM_NoEnforcement(benchmark::State& state) {
  Database* db = SharedDb();
  SessionContext ctx("s7");
  ctx.set_mode(EnforcementMode::kNone);
  for (auto _ : state) {
    auto r = db->Execute(kQuery, ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}

void BM_ValidityUncached(benchmark::State& state) {
  Database* db = SharedDb();
  db->options().enable_validity_cache = false;
  SessionContext ctx("s7");
  ctx.set_mode(EnforcementMode::kNonTruman);
  for (auto _ : state) {
    auto r = db->Execute(kQuery, ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  db->options().enable_validity_cache = true;
}

void BM_ValidityCached(benchmark::State& state) {
  Database* db = SharedDb();
  db->options().enable_validity_cache = true;
  SessionContext ctx("s7");
  ctx.set_mode(EnforcementMode::kNonTruman);
  // Warm the cache.
  if (!db->Execute(kQuery, ctx).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  for (auto _ : state) {
    auto r = db->Execute(kQuery, ctx);
    if (!r.ok() || !r.value().validity_from_cache) {
      state.SkipWithError("expected a cache hit");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(db->validity_cache().hits()));
}

// Prepared-statement pattern: same statement, different constants => each
// constant keys its own verdict, so a workload cycling through a few users
// still hits after one round.
void BM_PreparedStatementCycle(benchmark::State& state) {
  Database* db = SharedDb();
  db->options().enable_validity_cache = true;
  std::vector<SessionContext> sessions;
  std::vector<std::string> queries;
  for (int i = 0; i < 8; ++i) {
    std::string sid = "s" + std::to_string(10 + i);
    sessions.emplace_back(sid);
    sessions.back().set_mode(EnforcementMode::kNonTruman);
    queries.push_back("select grade from grades where student-id = '" + sid +
                      "'");
  }
  size_t i = 0;
  for (auto _ : state) {
    auto r = db->Execute(queries[i % 8], sessions[i % 8]);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
    ++i;
  }
}

}  // namespace

BENCHMARK(BM_NoEnforcement)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ValidityUncached)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ValidityCached)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PreparedStatementCycle)->Unit(benchmark::kMicrosecond);

FGAC_BENCHMARK_MAIN();
