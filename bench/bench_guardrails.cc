// Guardrail overhead microbench — the cost of a *quiet* guard.
//
// The same physical plan is executed with no guard (baseline) and with a
// guard whose deadline and budgets are generous enough never to trip, so
// the measured delta is pure bookkeeping: one Check() per DataChunk at
// pipeline sources plus Charge*() at materialization points. The design
// target (EXPERIMENTS.md) is < 2% on the E1-E3 style execution workloads;
// per-chunk batching is what keeps it there — the guard fires once per
// 1024 rows, not once per row.
//
// Run at 1 and 4 threads: the 4-thread rows also price the shared atomic
// counters all morsel workers charge into.

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>

#include "algebra/binder.h"
#include "bench/bench_report.h"
#include "bench/workload.h"
#include "common/query_guard.h"
#include "exec/parallel.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

namespace {

using fgac::bench::LoadScaledUniversity;
using fgac::bench::UniversityScale;
using fgac::common::QueryGuard;
using fgac::common::QueryLimits;
using fgac::core::Database;

constexpr const char* kScanQuery =
    "select count(*) from grades where grade >= 2.5";
constexpr const char* kAggQuery =
    "select course-id, avg(grade), count(*) from grades group by course-id";
constexpr const char* kJoinQuery =
    "select students.name, grades.grade from students, grades "
    "where students.student-id = grades.student-id and grades.grade >= 3.0";

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    UniversityScale scale;
    scale.students = 8000;
    scale.courses = 40;
    LoadScaledUniversity(d, scale);
    return d;
  }();
  return db;
}

// range(0): 0 = no guard, 1 = quiet guard. range(1): threads.
void RunGuarded(benchmark::State& state, const char* query) {
  Database* db = SharedDb();
  const bool guarded = state.range(0) != 0;
  const size_t threads = static_cast<size_t>(state.range(1));
  auto stmt = fgac::sql::Parser::ParseSelect(query);
  fgac::algebra::Binder binder(db->catalog(), {});
  auto plan = binder.BindSelect(*stmt.value());
  if (!plan.ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  auto row_count = [db](const std::string& table) -> double {
    const auto* t = db->state().GetTable(table);
    return t != nullptr ? static_cast<double>(t->num_rows()) : 0.0;
  };
  auto best = fgac::optimizer::Optimize(plan.value(),
                                        fgac::optimizer::ExpandOptions{},
                                        row_count);
  if (!best.ok()) {
    state.SkipWithError("optimize failed");
    return;
  }
  QueryLimits limits;
  limits.timeout = std::chrono::minutes(10);
  limits.max_rows = 1ull << 40;
  limits.max_memory_bytes = 1ull << 50;
  for (auto _ : state) {
    QueryGuard guard(limits);
    auto rel = fgac::exec::ParallelExecutePlan(best.value().plan, db->state(),
                                               threads,
                                               guarded ? &guard : nullptr);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rel.value().num_rows());
  }
  state.counters["guarded"] =
      benchmark::Counter(guarded ? 1.0 : 0.0);
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(threads));
}

void BM_GuardOverheadScan(benchmark::State& state) {
  RunGuarded(state, kScanQuery);
}
void BM_GuardOverheadAgg(benchmark::State& state) {
  RunGuarded(state, kAggQuery);
}
void BM_GuardOverheadJoin(benchmark::State& state) {
  RunGuarded(state, kJoinQuery);
}

}  // namespace

BENCHMARK(BM_GuardOverheadScan)
    ->Args({0, 1})->Args({1, 1})->Args({0, 4})->Args({1, 4})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GuardOverheadAgg)
    ->Args({0, 1})->Args({1, 1})->Args({0, 4})->Args({1, 4})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GuardOverheadJoin)
    ->Args({0, 1})->Args({1, 1})->Args({0, 4})->Args({1, 4})
    ->Unit(benchmark::kMicrosecond);

FGAC_BENCHMARK_MAIN();
