// Experiment E17 — steady-state PREPARE/EXECUTE through the server core.
//
// The paper's Section 5.6 observation, taken to a multi-session server:
// for prepared statements the validity test (and the Truman rewrite) can
// be computed once and reused, so steady-state enforced execution should
// cost about what unenforced execution costs. This bench drives the full
// stack — ConnectionManager sessions, the per-session prepared registry,
// and the sharded per-principal StatementCache — in a closed loop of
// N sessions x M principals, and reports throughput plus p50/p95/p99
// (cross-checked against the database's own metrics histograms).
//
// Protocol:
//   1. PREPARE one parameterized statement per session (restricted to the
//      principal's own rows, so the Non-Truman check accepts it);
//   2. warm-up EXECUTE round: populates verdicts/rewrites in the
//      StatementCache (every later execution is a cache hit);
//   3. measured closed loop per enforcement mode (none / Truman /
//      Non-Truman), 8 session threads cycling EXECUTE arguments;
//   4. emit per-mode p50/p95/p99 + qps, and the enforced/unenforced
//      overhead ratio.
//
// Self-gates (exit 1): every measured execution must succeed; the
// steady-state loops must actually hit the statement cache (hit rate
// > 90%); enforced steady state must stay within 2x of unenforced (a
// loose tripwire for total cache failure — the tight regression gate is
// bench/check_regression.py --require prepared_steady_state_p99 against
// the seed baseline, which CI enforces on every PR).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "bench/workload.h"
#include "common/metrics.h"
#include "core/database.h"
#include "server/connection_manager.h"

namespace {

using Clock = std::chrono::steady_clock;
using fgac::bench::EmitJsonLine;
using fgac::bench::LoadScaledUniversity;
using fgac::bench::UniversityScale;
using fgac::core::Database;
using fgac::core::DatabaseOptions;
using fgac::core::EnforcementMode;
using fgac::server::ConnectionManager;
using fgac::server::Session;

constexpr int kSessions = 8;
constexpr int kPrincipals = 4;
constexpr int kItersPerSession = 200;
constexpr int kCourses = 8;  // EXECUTE argument rotation

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  UniversityScale scale;
  scale.students = 2000;
  scale.courses = 40;
  LoadScaledUniversity(db.get(), scale);
  // mygrades: the principal's own grades, the view that makes the bench
  // statement provably valid under Non-Truman and the Truman policy for
  // the grades table.
  if (!db->ExecuteAsAdmin(
             "create authorization view mygrades as "
             "select student-id, course-id, grade from grades "
             "where student-id = $user-id")
           .ok() ||
      !db->catalog().SetTrumanView("grades", "mygrades").ok()) {
    std::fprintf(stderr, "setup failed\n");
    std::exit(1);
  }
  for (int p = 0; p < kPrincipals; ++p) {
    std::string user = "s" + std::to_string(p);
    if (!db->ExecuteAsAdmin("grant select on mygrades to " + user).ok()) {
      std::fprintf(stderr, "grant failed for %s\n", user.c_str());
      std::exit(1);
    }
  }
  return db;
}

double PercentileUs(std::vector<uint64_t> us, double p) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  size_t idx = static_cast<size_t>(p / 100.0 * static_cast<double>(us.size()));
  return static_cast<double>(us[std::min(idx, us.size() - 1)]);
}

struct ModeResult {
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  double qps = 0;
  uint64_t executed = 0;
  int errors = 0;
};

/// Closed loop: kSessions threads, session i runs as principal i %
/// kPrincipals, each re-EXECUTEs its prepared statement kItersPerSession
/// times cycling through kCourses arguments.
ModeResult RunClosedLoop(Database* db, EnforcementMode mode) {
  ConnectionManager cm(*db);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < kSessions; ++i) {
    auto s = cm.Open("s" + std::to_string(i % kPrincipals), mode);
    auto p = s->Execute(
        "prepare q as select grade from grades "
        "where student-id = $user-id and course-id = $1");
    if (!p.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   p.status().ToString().c_str());
      std::exit(1);
    }
    sessions.push_back(std::move(s));
  }
  auto arg = [](int j) {
    return "execute q ('c" + std::to_string(j % kCourses) + "')";
  };
  // Warm-up: one pass over every (session, argument) pair fills the
  // statement cache, so the measured loop is pure steady state.
  for (auto& s : sessions) {
    for (int j = 0; j < kCourses; ++j) {
      auto r = s->Execute(arg(j));
      if (!r.ok()) {
        std::fprintf(stderr, "warm-up failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
    }
  }

  std::mutex mu;
  std::vector<uint64_t> all_us;
  std::atomic<int> errors{0};
  Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      std::vector<uint64_t> local_us;
      local_us.reserve(kItersPerSession);
      for (int j = 0; j < kItersPerSession; ++j) {
        Clock::time_point q0 = Clock::now();
        auto r = sessions[static_cast<size_t>(i)]->Execute(arg(j));
        Clock::time_point q1 = Clock::now();
        if (!r.ok()) {
          std::fprintf(stderr, "execute failed: %s\n",
                       r.status().ToString().c_str());
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        local_us.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(q1 - q0)
                .count()));
      }
      std::lock_guard<std::mutex> lock(mu);
      all_us.insert(all_us.end(), local_us.begin(), local_us.end());
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_s = std::chrono::duration_cast<std::chrono::duration<double>>(
                      Clock::now() - t0)
                      .count();
  ModeResult res;
  res.executed = all_us.size();
  res.errors = errors.load();
  res.p50_us = PercentileUs(all_us, 50.0);
  res.p95_us = PercentileUs(all_us, 95.0);
  res.p99_us = PercentileUs(all_us, 99.0);
  for (uint64_t v : all_us) res.mean_us += static_cast<double>(v);
  if (!all_us.empty()) res.mean_us /= static_cast<double>(all_us.size());
  res.qps = wall_s > 0 ? static_cast<double>(res.executed) / wall_s : 0;
  cm.CloseAll();
  return res;
}

void EmitMode(const std::string& name, const ModeResult& r) {
  char extra[200];
  std::snprintf(extra, sizeof(extra),
                ",\"p50_us\":%.1f,\"p95_us\":%.1f,\"qps\":%.1f,"
                "\"executed\":%llu",
                r.p50_us, r.p95_us, r.qps,
                static_cast<unsigned long long>(r.executed));
  EmitJsonLine(name, r.p99_us * 1000.0, /*rows_per_sec=*/0.0, extra);
}

}  // namespace

int main(int argc, char** argv) {
  // Accepts (and ignores) Google-Benchmark-style flags so run_all.sh can
  // pass one GBENCH_FLAGS to every binary.
  (void)argc;
  (void)argv;
  std::unique_ptr<Database> db = MakeDb();

  ModeResult none = RunClosedLoop(db.get(), EnforcementMode::kNone);
  EmitMode("prepared_unenforced_p99", none);
  std::printf("unenforced:  mean %.0fus p50 %.0fus p99 %.0fus (%.0f qps)\n",
              none.mean_us, none.p50_us, none.p99_us, none.qps);

  ModeResult truman = RunClosedLoop(db.get(), EnforcementMode::kTruman);
  EmitMode("prepared_truman_p99", truman);
  std::printf("truman:      mean %.0fus p50 %.0fus p99 %.0fus (%.0f qps)\n",
              truman.mean_us, truman.p50_us, truman.p99_us, truman.qps);

  uint64_t hits_before = db->statement_cache().hits();
  uint64_t misses_before = db->statement_cache().misses();
  ModeResult nontruman = RunClosedLoop(db.get(), EnforcementMode::kNonTruman);
  EmitMode("prepared_steady_state_p99", nontruman);
  std::printf("non-truman:  mean %.0fus p50 %.0fus p99 %.0fus (%.0f qps)\n",
              nontruman.mean_us, nontruman.p50_us, nontruman.p99_us,
              nontruman.qps);

  double overhead =
      none.mean_us > 0 ? nontruman.mean_us / none.mean_us : 0;
  char extra[96];
  std::snprintf(extra, sizeof(extra), ",\"overhead_ratio\":%.3f", overhead);
  EmitJsonLine("prepared_enforced_overhead", nontruman.mean_us * 1000.0, 0.0,
               extra);
  std::printf("enforced/unenforced overhead: %.2fx\n", overhead);

  // Cross-check against the engine's own histogram (the metrics pipeline
  // CI dashboards would scrape).
  fgac::common::MetricsSnapshot snap = db->metrics().Snapshot();
  auto hist = snap.histograms.find("prepared.execute_us");
  if (hist != snap.histograms.end()) {
    std::printf("metrics histogram prepared.execute_us: count %llu "
                "p50 %lluus p95 %lluus p99 %lluus\n",
                static_cast<unsigned long long>(hist->second.count),
                static_cast<unsigned long long>(hist->second.p50),
                static_cast<unsigned long long>(hist->second.p95),
                static_cast<unsigned long long>(hist->second.p99));
  }

  // Self-gates.
  int failures = 0;
  if (none.errors + truman.errors + nontruman.errors > 0) {
    std::fprintf(stderr, "GATE: %d executions failed\n",
                 none.errors + truman.errors + nontruman.errors);
    ++failures;
  }
  uint64_t hits = db->statement_cache().hits() - hits_before;
  uint64_t misses = db->statement_cache().misses() - misses_before;
  double hit_rate = hits + misses > 0
                        ? static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0;
  if (hit_rate < 0.9) {
    std::fprintf(stderr,
                 "GATE: steady-state statement-cache hit rate %.2f < 0.9 "
                 "(%llu hits / %llu misses)\n",
                 hit_rate, static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(misses));
    ++failures;
  }
  if (none.mean_us > 0 && nontruman.mean_us > 2.0 * none.mean_us) {
    std::fprintf(stderr,
                 "GATE: enforced steady state %.0fus > 2x unenforced %.0fus\n",
                 nontruman.mean_us, none.mean_us);
    ++failures;
  }
  std::printf("statement cache: hit rate %.3f over the measured loop\n",
              hit_rate);
  return failures == 0 ? 0 : 1;
}
