// Observability overhead microbench — the cost of metrics that are ON by
// default versus opt-in profiling.
//
// Three configurations of the same end-to-end SELECT through the Database
// facade:
//   mode 0: metrics-off baseline — a Database whose registry exists but
//           whose per-query counters are the only always-on cost is not
//           separable, so the baseline drives the raw executor directly
//           (bind + optimize + execute, no facade bookkeeping);
//   mode 1: the facade's always-on path (counters + latency histograms,
//           no ExecStats, no ValidityTrace) — the production default;
//   mode 2: full profiling (SessionContext::set_profile: StatsOp wrapping
//           of every operator plus the validity trace) — EXPLAIN ANALYZE.
//
// The design budget (EXPERIMENTS.md): mode 1 within 2% of mode 0. Mode 2
// is allowed to cost more — it is opt-in, per query.
//
// Also prices the registry primitives in isolation (counter increment,
// histogram record, snapshot of a populated registry) so a regression in
// the atomics shows up without end-to-end noise.

#include <benchmark/benchmark.h>

#include <string>

#include "algebra/binder.h"
#include "bench/bench_report.h"
#include "bench/workload.h"
#include "common/metrics.h"
#include "core/database.h"
#include "exec/parallel.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

namespace {

using fgac::bench::LoadScaledUniversity;
using fgac::bench::UniversityScale;
using fgac::common::MetricsRegistry;
using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

constexpr const char* kQuery =
    "select course-id, avg(grade), count(*) from grades group by course-id";

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    UniversityScale scale;
    scale.students = 8000;
    scale.courses = 40;
    LoadScaledUniversity(d, scale);
    return d;
  }();
  return db;
}

// mode 0: raw executor, no facade. The floor the facade is measured against.
void BM_QueryRawExecutor(benchmark::State& state) {
  Database* db = SharedDb();
  auto stmt = fgac::sql::Parser::ParseSelect(kQuery);
  fgac::algebra::Binder binder(db->catalog(), {});
  auto plan = binder.BindSelect(*stmt.value());
  auto row_count = [db](const std::string& table) -> double {
    const auto* t = db->state().GetTable(table);
    return t != nullptr ? static_cast<double>(t->num_rows()) : 0.0;
  };
  auto best = fgac::optimizer::Optimize(plan.value(),
                                        fgac::optimizer::ExpandOptions{},
                                        row_count);
  for (auto _ : state) {
    auto rel =
        fgac::exec::ParallelExecutePlan(best.value().plan, db->state(), 1);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rel.value().num_rows());
  }
}

// mode 1 (profile=false) and mode 2 (profile=true): the facade path that
// production queries take, with always-on metrics; range(0) toggles the
// opt-in ExecStats + ValidityTrace.
void BM_QueryFacade(benchmark::State& state) {
  Database* db = SharedDb();
  SessionContext ctx("admin");
  ctx.set_mode(EnforcementMode::kNone);
  ctx.set_profile(state.range(0) != 0);
  for (auto _ : state) {
    auto r = db->Execute(kQuery, ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().relation.num_rows());
  }
  state.counters["profiled"] =
      benchmark::Counter(state.range(0) != 0 ? 1.0 : 0.0);
}

void BM_CounterIncrement(benchmark::State& state) {
  MetricsRegistry reg;
  fgac::common::Counter& c = reg.counter("bench");
  for (auto _ : state) {
    c.Increment();
    benchmark::DoNotOptimize(c);
  }
}

void BM_HistogramRecord(benchmark::State& state) {
  MetricsRegistry reg;
  fgac::common::Histogram& h = reg.histogram("bench");
  uint64_t v = 0;
  for (auto _ : state) {
    h.Record(v++ & 0xffff);
    benchmark::DoNotOptimize(h);
  }
}

void BM_RegistrySnapshot(benchmark::State& state) {
  MetricsRegistry reg;
  for (int i = 0; i < 64; ++i) {
    reg.counter("c" + std::to_string(i)).Increment(i);
    reg.histogram("h" + std::to_string(i)).Record(i);
  }
  for (auto _ : state) {
    auto snap = reg.Snapshot();
    benchmark::DoNotOptimize(snap.counters.size());
  }
}

}  // namespace

BENCHMARK(BM_QueryRawExecutor)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryFacade)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CounterIncrement);
BENCHMARK(BM_HistogramRecord);
BENCHMARK(BM_RegistrySnapshot)->Unit(benchmark::kMicrosecond);

FGAC_BENCHMARK_MAIN();
