// Experiment E7 — Section 7 (and Section 1) claim: tuple-level access
// control lists are "not scalable, and would be totally impractical in
// systems with millions of tuples, and thousands or millions of users,
// since it would require millions of access control specifications".
//
// Compares, sweeping tuples x users:
//   * the ACL baseline: per-(tuple, user) grant entries, their count,
//     construction time, and memory footprint;
//   * the authorization-view approach: ONE parameterized view definition
//     regardless of scale (plus one grant per user or a single public
//     grant), with near-zero administration cost.
//
// Expected shape: ACL cost grows ~linearly in tuples x authorized-users;
// the view column is flat.

#include <chrono>
#include <cstdio>

#include "bench/bench_report.h"
#include "bench/workload.h"
#include "core/acl_baseline.h"

namespace {

using fgac::Value;
using fgac::bench::TimeMs;
using fgac::core::TupleAclStore;

struct AclPoint {
  size_t entries;
  double build_ms;
  double memory_mb;
  double check_us;
};

int benchmark_dummy = 0;

/// Grants each user their own grade tuples plus the tuples of everyone in
/// a shared course (mimicking costudentgrades as an ACL would have to).
AclPoint BuildAcl(int tuples, int users) {
  TupleAclStore store;
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < tuples; ++t) {
    // Each tuple visible to its owner and to ~2 co-students.
    std::string key = "g" + std::to_string(t);
    int owner = t % users;
    store.Grant("grades", Value::String(key), "s" + std::to_string(owner));
    store.Grant("grades", Value::String(key),
                "s" + std::to_string((owner + 1) % users));
    store.Grant("grades", Value::String(key),
                "s" + std::to_string((owner + 7) % users));
  }
  auto end = std::chrono::steady_clock::now();
  AclPoint point;
  point.entries = store.num_entries();
  point.build_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  point.memory_mb =
      static_cast<double>(store.ApproxMemoryBytes()) / (1024.0 * 1024.0);
  point.check_us =
      TimeMs(20000, [&] {
        benchmark_dummy += store.Check("grades", Value::String("g17"), "s3");
      }) *
      1000.0;
  return point;
}

}  // namespace

int main() {
  std::printf(
      "E7 / Section 7: tuple-ACL baseline vs one parameterized "
      "authorization view\n\n");
  std::printf("%10s | %7s || %12s | %10s | %10s || %18s\n", "tuples", "users",
              "ACL entries", "build ms", "memory MB", "view defs (const)");
  std::printf("%s\n", std::string(90, '-').c_str());

  const int kTupleScales[] = {10000, 100000, 1000000};
  const int kUserScales[] = {100, 1000};
  for (int tuples : kTupleScales) {
    for (int users : kUserScales) {
      AclPoint p = BuildAcl(tuples, users);
      std::printf("%10d | %7d || %12zu | %10.1f | %10.1f || %18s\n", tuples,
                  users, p.entries, p.build_ms, p.memory_mb,
                  "1 view + 1 grant");
      fgac::bench::EmitJsonLine(
          "acl_baseline/tuples" + std::to_string(tuples) + "_users" +
              std::to_string(users),
          p.build_ms * 1e6, 0.0,
          ",\"acl_entries\":" + std::to_string(p.entries));
    }
  }

  // The view side, measured concretely: administration cost is one CREATE
  // VIEW and one GRANT regardless of scale, and per-query authorization is
  // the validity check (measured in E4/E6), not a per-tuple lookup.
  fgac::core::Database db;
  fgac::bench::UniversityScale scale;
  scale.students = 1000;
  scale.courses = 50;
  double admin_ms = TimeMs(1, [&] {
    fgac::bench::LoadScaledUniversity(&db, scale);
    if (!db.ExecuteScript(
             "create authorization view mygrades as "
             "select * from grades where student-id = $user-id;"
             "grant select on mygrades to public")
             .ok()) {
      std::abort();
    }
  });
  std::printf(
      "\nView-based administration for %zu grade tuples and ANY number of "
      "users: 2 statements, %.1f ms total\n(vs millions of ACL entries "
      "above — the 'rule-based framework, where one view definition "
      "applies across several users', Section 2).\n",
      db.state().GetTable("grades")->num_rows(), admin_ms);
  return 0;
}
