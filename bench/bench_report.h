#ifndef FGAC_BENCH_BENCH_REPORT_H_
#define FGAC_BENCH_BENCH_REPORT_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace fgac::bench {

namespace internal {

inline std::string JsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline std::ostream& JsonSink() {
  static std::ofstream* file = [] {
    const char* path = std::getenv("FGAC_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') {
      return static_cast<std::ofstream*>(nullptr);
    }
    return new std::ofstream(path, std::ios::app);
  }();
  return file != nullptr && file->is_open()
             ? static_cast<std::ostream&>(*file)
             : static_cast<std::ostream&>(std::cerr);
}

}  // namespace internal

/// JSON-line emission for hand-rolled bench mains (tables of measured
/// points rather than Google Benchmark loops). Lines go to
/// $FGAC_BENCH_JSON (appended) or stderr, matching JsonLinesReporter.
/// `extra` holds pre-rendered `,"key":value` pairs and may be empty.
inline void EmitJsonLine(const std::string& name, double ns_per_op,
                         double rows_per_sec = 0.0,
                         const std::string& extra = "") {
  std::ostream& out = internal::JsonSink();
  out << "{\"name\":\"" << internal::JsonEscaped(name)
      << "\",\"ns_per_op\":" << ns_per_op;
  if (rows_per_sec > 0) out << ",\"rows_per_sec\":" << rows_per_sec;
  out << extra << "}\n";
  out.flush();
}

/// Display reporter that also emits one JSON object per benchmark run
/// (JSON lines) for machine consumption by bench/run_all.sh.
///
/// Each line carries: name, ns_per_op / cpu_ns_per_op (per-iteration real
/// and CPU time), iterations, every user counter, and rows_per_sec when the
/// benchmark reported a "rows" counter (rows processed per iteration).
///
/// The lines go to the file named by $FGAC_BENCH_JSON (appended, so one
/// file can aggregate several bench binaries) or to stderr when the
/// variable is unset; the normal console table is unaffected either way.
class JsonLinesReporter : public benchmark::BenchmarkReporter {
 public:
  JsonLinesReporter() : inner_(benchmark::CreateDefaultDisplayReporter()) {}

  bool ReportContext(const Context& context) override {
    return inner_->ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    inner_->ReportRuns(runs);
    std::ostream& out = internal::JsonSink();
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      double real_s = run.real_accumulated_time / iters;
      double cpu_s = run.cpu_accumulated_time / iters;
      out << "{\"name\":\"" << internal::JsonEscaped(run.benchmark_name())
          << "\",\"ns_per_op\":" << real_s * 1e9
          << ",\"cpu_ns_per_op\":" << cpu_s * 1e9
          << ",\"iterations\":" << run.iterations;
      for (const auto& [name, counter] : run.counters) {
        out << ",\"" << internal::JsonEscaped(name) << "\":" << counter.value;
      }
      auto rows = run.counters.find("rows");
      if (rows != run.counters.end() && real_s > 0) {
        out << ",\"rows_per_sec\":" << rows->second.value / real_s;
      }
      out << "}\n";
    }
    out.flush();
  }

  void Finalize() override { inner_->Finalize(); }

 private:
  std::unique_ptr<benchmark::BenchmarkReporter> inner_;
};

}  // namespace fgac::bench

/// main() for fgac benchmarks: the standard Google Benchmark CLI with the
/// JSON-lines side channel above.
#define FGAC_BENCHMARK_MAIN()                                         \
  int main(int argc, char** argv) {                                   \
    benchmark::Initialize(&argc, argv);                               \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    fgac::bench::JsonLinesReporter reporter;                          \
    benchmark::RunSpecifiedBenchmarks(&reporter);                     \
    benchmark::Shutdown();                                            \
    return 0;                                                         \
  }                                                                   \
  int main(int, char**)

#endif  // FGAC_BENCH_BENCH_REPORT_H_
