// Experiment E1 — Figure 1 and the goal-directed validity search.
//
// Part 1 regenerates the paper's only figure: the AND-OR DAG of A ⋈ B ⋈ C
// before and after equivalence-rule expansion ("at worst exponential in
// the number of relations, but represents a much larger number of query
// plans").
//
// Part 2 (the dag/chainN series) runs end-to-end Non-Truman validity
// checks of chain joins n = 2..12 against pairwise authorization views
// (bt0⋈bt1, bt2⋈bt3, ...): each query is provably valid by bracketing the
// chain into the pair blocks, which the demand-driven search finds without
// saturating the join-order space. The exhaustive breadth-first reference
// is timed alongside for small n — past that it is the combinatorial blowup
// this PR exists to avoid.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/workload.h"
#include "core/auth_view.h"
#include "core/database.h"
#include "core/session_context.h"
#include "core/validity.h"
#include "optimizer/memo.h"
#include "optimizer/rules.h"
#include "sql/parser.h"

namespace fgac::bench {
namespace {

algebra::PlanPtr BindChain(core::Database* db, const std::string& sql,
                           const core::SessionContext& ctx) {
  auto stmt = sql::Parser::ParseSelect(sql);
  if (!stmt.ok()) std::abort();
  auto plan = db->BindQuery(*stmt.value(), ctx);
  if (!plan.ok()) std::abort();
  return plan.value();
}

struct ChainPoint {
  int relations = 0;
  bool unconditional = false;
  size_t memo_groups = 0;   // created, not post-pruning live
  size_t memo_exprs = 0;
  size_t groups_pruned = 0;
  size_t exprs_skipped = 0;
  size_t frontier_depth = 0;
  size_t passes = 0;
  double check_ms = 0;
  double exhaustive_ms = -1;  // only measured for small n
};

core::ValidityReport CheckChain(core::Database* db, int n, bool goal_directed,
                                double* ms) {
  core::SessionContext ctx("bench");
  std::string sql = ChainJoinQuery(db, n);
  std::vector<std::string> view_names = CreateChainPairViews(db, n);
  algebra::PlanPtr plan = BindChain(db, sql, ctx);
  std::vector<core::InstantiatedView> views;
  for (const std::string& name : view_names) {
    auto v = core::InstantiateView(db->catalog(), *db->catalog().GetView(name),
                                   ctx);
    if (!v.ok()) std::abort();
    views.push_back(std::move(v).value());
  }
  core::ValidityOptions options;
  options.goal_directed_search = goal_directed;
  core::ValidityReport report;
  *ms = TimeMs(1, [&] {
    core::ValidityChecker checker(db->catalog(), &db->state(), options);
    auto r = checker.Check(plan, views);
    if (!r.ok()) std::abort();
    report = std::move(r).value();
  });
  return report;
}

ChainPoint MeasureChain(core::Database* db, int n, int exhaustive_max) {
  ChainPoint point;
  point.relations = n;
  core::ValidityReport report =
      CheckChain(db, n, /*goal_directed=*/true, &point.check_ms);
  if (!report.valid) {
    std::fprintf(stderr, "dag/chain%d: expected a valid verdict\n", n);
    std::abort();
  }
  point.unconditional = report.unconditional;
  point.memo_groups = report.memo_groups;
  point.memo_exprs = report.memo_exprs;
  point.groups_pruned = report.groups_pruned;
  point.exprs_skipped = report.exprs_skipped;
  point.frontier_depth = report.frontier_depth;
  point.passes = report.expansion_passes;
  if (n <= exhaustive_max) {
    core::ValidityReport full =
        CheckChain(db, n, /*goal_directed=*/false, &point.exhaustive_ms);
    if (full.valid != report.valid || full.unconditional != report.unconditional) {
      std::fprintf(stderr, "dag/chain%d: goal-directed and exhaustive "
                           "verdicts diverge\n", n);
      std::abort();
    }
  }
  return point;
}

void Figure1Instance(core::Database* db) {
  core::SessionContext ctx("bench");
  std::string sql = ChainJoinQuery(db, 3);
  algebra::PlanPtr plan = BindChain(db, sql, ctx);
  optimizer::Memo memo;
  optimizer::GroupId root = memo.InsertPlan(plan);
  size_t initial_groups = memo.num_live_groups();
  size_t initial_exprs = memo.num_live_exprs();
  optimizer::ExpandOptions options;
  optimizer::ExpandMemo(&memo, options);
  std::printf(
      "Figure 1 instance (A JOIN B JOIN C): initial DAG %zu/%zu nodes, "
      "expanded DAG holds %zu equivalence\nnodes / %zu operation nodes and "
      "represents %.0f distinct plans (>= the figure's 3 bushy orders;\n"
      "commuted variants are counted as distinct operation trees).\n\n",
      initial_groups, initial_exprs, memo.num_live_groups(),
      memo.num_live_exprs(), memo.CountPlans(memo.Find(root)));
}

}  // namespace
}  // namespace fgac::bench

int main() {
  using fgac::bench::ChainPoint;
  fgac::core::Database db;

  std::printf(
      "E1 / Figure 1: AND-OR DAG expansion and the goal-directed validity "
      "search (chain joins vs pairwise views)\n\n");
  fgac::bench::Figure1Instance(&db);

  // Exhaustive reference past a handful of relations is the blowup this
  // series documents (chain5 ≈ 16 s, chain6 ≈ 41 s); it is timed only
  // where it terminates quickly enough for the CI bench gate.
  const int kExhaustiveMax = 4;
  std::printf("%4s | %7s | %15s | %7s | %8s | %6s | %6s | %10s | %s\n",
              "rels", "verdict", "created (G/E)", "pruned", "skipped", "depth",
              "passes", "goal ms", "exhaustive ms");
  std::printf("%s\n", std::string(100, '-').c_str());
  for (int n = 2; n <= 12; ++n) {
    ChainPoint p = fgac::bench::MeasureChain(&db, n, kExhaustiveMax);
    std::printf("%4d | %7s | %7zu/%7zu | %6zu | %7zu | %6zu | %6zu | %10.2f | ",
                p.relations, p.unconditional ? "U" : "C", p.memo_groups,
                p.memo_exprs, p.groups_pruned, p.exprs_skipped,
                p.frontier_depth, p.passes, p.check_ms);
    if (p.exhaustive_ms >= 0) {
      std::printf("%.2f\n", p.exhaustive_ms);
    } else {
      std::printf("(skipped)\n");
    }
    fgac::bench::EmitJsonLine(
        "dag/chain" + std::to_string(n), p.check_ms * 1e6, 0.0,
        ",\"expanded_groups\":" + std::to_string(p.memo_groups) +
            ",\"expanded_exprs\":" + std::to_string(p.memo_exprs) +
            ",\"groups_pruned\":" + std::to_string(p.groups_pruned) +
            ",\"exprs_skipped\":" + std::to_string(p.exprs_skipped) +
            ",\"frontier_depth\":" + std::to_string(p.frontier_depth));
  }
  return 0;
}
