// Experiment E1 — Figure 1: Volcano AND-OR DAG data structures.
//
// The paper's only figure shows the initial and expanded AND-OR DAG of the
// query A ⋈ B ⋈ C: the expanded DAG compactly represents every join order
// ("at worst exponential in the number of relations, but represents a much
// larger number of query plans"). This bench regenerates the figure's
// numbers for the 3-relation query and extends the series to chain joins of
// n = 2..10 relations: equivalence nodes (OR), operation nodes (AND),
// represented plan count, and expansion time.
//
// Expected shape (paper, Section 5.6.1): node counts grow far slower than
// the plan count, which explodes combinatorially.

#include <cstdio>

#include "algebra/binder.h"
#include "bench/bench_report.h"
#include "bench/workload.h"
#include "optimizer/memo.h"
#include "optimizer/rules.h"
#include "sql/parser.h"

namespace fgac::bench {
namespace {

struct DagPoint {
  int relations;
  size_t initial_groups, initial_exprs;
  size_t expanded_groups, expanded_exprs;
  double plans;
  size_t passes;
  double expand_ms;
  bool budget_exhausted;
};

DagPoint Measure(core::Database* db, int n) {
  std::string sql = ChainJoinQuery(db, n);
  auto stmt = sql::Parser::ParseSelect(sql);
  algebra::Binder binder(db->catalog(), {});
  auto plan = binder.BindSelect(*stmt.value());
  if (!plan.ok()) std::abort();

  DagPoint point;
  point.relations = n;
  {
    optimizer::Memo memo;
    memo.InsertPlan(plan.value());
    point.initial_groups = memo.num_live_groups();
    point.initial_exprs = memo.num_live_exprs();
  }
  optimizer::Memo memo;
  optimizer::GroupId root = memo.InsertPlan(plan.value());
  optimizer::ExpandOptions options;
  options.max_exprs = 100000;
  options.max_passes = 24;
  optimizer::ExpandStats stats;
  point.expand_ms = TimeMs(1, [&] { stats = optimizer::ExpandMemo(&memo, options); });
  point.expanded_groups = memo.num_live_groups();
  point.expanded_exprs = memo.num_live_exprs();
  point.plans = memo.CountPlans(memo.Find(root));
  point.passes = stats.passes;
  point.budget_exhausted = stats.budget_exhausted;
  return point;
}

}  // namespace
}  // namespace fgac::bench

int main() {
  using fgac::bench::DagPoint;
  fgac::core::Database db;

  std::printf(
      "E1 / Figure 1: AND-OR DAG before and after equivalence-rule "
      "expansion (chain joins)\n\n");
  std::printf("%4s | %15s | %15s | %12s | %7s | %10s | %s\n", "rels",
              "initial (G/E)", "expanded (G/E)", "plans", "passes",
              "expand ms", "budget");
  std::printf("%s\n", std::string(92, '-').c_str());
  for (int n = 2; n <= 9; ++n) {
    DagPoint p = fgac::bench::Measure(&db, n);
    std::printf("%4d | %7zu/%7zu | %7zu/%7zu | %12.4g | %7zu | %10.2f | %s\n",
                p.relations, p.initial_groups, p.initial_exprs,
                p.expanded_groups, p.expanded_exprs, p.plans, p.passes,
                p.expand_ms, p.budget_exhausted ? "capped" : "fixpoint");
    fgac::bench::EmitJsonLine(
        "dag/chain" + std::to_string(n), p.expand_ms * 1e6, 0.0,
        ",\"expanded_groups\":" + std::to_string(p.expanded_groups) +
            ",\"expanded_exprs\":" + std::to_string(p.expanded_exprs));
  }

  // The figure's exact instance: A ⋈ B ⋈ C has three join orders modulo
  // commutativity ("disregarding join commutativity, there are three ways
  // of evaluating this query").
  DagPoint p3 = fgac::bench::Measure(&db, 3);
  std::printf(
      "\nFigure 1 instance (A JOIN B JOIN C): the expanded DAG holds %zu "
      "equivalence nodes / %zu operation nodes\nand represents %.0f "
      "distinct plans (>= the figure's 3 bushy orders; commuted variants "
      "are counted as distinct operation trees).\n",
      p3.expanded_groups, p3.expanded_exprs, p3.plans);
  return 0;
}
