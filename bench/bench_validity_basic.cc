// Experiment E4 — Section 5.6 claim: "Validity checking with the basic
// inference rules does not require equivalence rules to be applied to the
// views, and hence does not increase the cost significantly beyond normal
// query optimization."
//
// Measures, as the number of granted authorization views grows:
//   * optimize_only     — plain Volcano optimization of the query,
//   * basic_check       — optimization + U1/U2 marking with unexpanded
//                         view DAGs (Section 5.6.2),
//   * basic_no_pruning  — same without the irrelevant-view filter.
//
// Expected shape: basic_check stays within a small factor of optimize_only
// and grows only mildly with the view count (linear insert+mark work);
// pruning flattens the growth further.

#include <benchmark/benchmark.h>

#include "bench/bench_report.h"
#include "algebra/binder.h"
#include "bench/workload.h"
#include "core/auth_view.h"
#include "core/validity.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

namespace {

using fgac::bench::CreateSyntheticViews;
using fgac::bench::LoadScaledUniversity;
using fgac::core::Database;
using fgac::core::InstantiatedView;
using fgac::core::SessionContext;

constexpr const char* kQuery =
    "select student-id, grade from grades "
    "where course-id = 'c1' and grade >= 3.0";

struct Env {
  Database db;
  SessionContext ctx{"s1"};
  fgac::algebra::PlanPtr plan;
  std::vector<InstantiatedView> views;
};

Env* EnvForViews(int num_views) {
  static std::map<int, Env*>* envs = new std::map<int, Env*>();
  auto it = envs->find(num_views);
  if (it != envs->end()) return it->second;
  auto* env = new Env();
  fgac::bench::UniversityScale scale;
  scale.students = 200;
  LoadScaledUniversity(&env->db, scale);
  // One view that always testifies for kQuery (via selection subsumption:
  // the query's predicate implies grade >= 2.0); the synthetic views are
  // the sweep variable.
  if (!env->db
           .ExecuteScript("create authorization view goodgrades as "
                          "select * from grades where grade >= 2.0;"
                          "grant select on goodgrades to s1")
           .ok()) {
    std::abort();
  }
  CreateSyntheticViews(&env->db, num_views, "s1");
  auto stmt = fgac::sql::Parser::ParseSelect(kQuery);
  fgac::algebra::Binder binder(env->db.catalog(), {});
  env->plan = binder.BindSelect(*stmt.value()).value();
  env->views =
      fgac::core::InstantiateAvailableViews(env->db.catalog(), env->ctx)
          .value();
  envs->emplace(num_views, env);
  return env;
}

void BM_OptimizeOnly(benchmark::State& state) {
  Env* env = EnvForViews(static_cast<int>(state.range(0)));
  fgac::optimizer::ExpandOptions options;
  for (auto _ : state) {
    auto result = fgac::optimizer::Optimize(
        env->plan, options, [](const std::string&) { return 1000.0; });
    if (!result.ok()) state.SkipWithError("optimize failed");
    benchmark::DoNotOptimize(result);
  }
}

void RunBasicCheck(benchmark::State& state, bool prune) {
  Env* env = EnvForViews(static_cast<int>(state.range(0)));
  fgac::core::ValidityOptions options;
  options.enable_complex_rules = false;
  options.enable_conditional_rules = false;
  options.prune_views = prune;
  size_t memo_exprs = 0;
  for (auto _ : state) {
    fgac::core::ValidityChecker checker(env->db.catalog(), &env->db.state(),
                                        options);
    auto report = checker.Check(env->plan, env->views);
    if (!report.ok() || !report.value().valid) {
      state.SkipWithError("expected the query to be valid");
      return;
    }
    memo_exprs = report.value().memo_exprs;
    benchmark::DoNotOptimize(report);
  }
  state.counters["memo_exprs"] =
      benchmark::Counter(static_cast<double>(memo_exprs));
}

// Execution phase of the benchmark query in isolation (the validity check
// above never executes the query; this tracks the physical engine).
void BM_ExecOnly(benchmark::State& state) {
  Env* env = EnvForViews(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto rel = fgac::exec::ExecutePlan(env->plan, env->db.state());
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rel.value().num_rows());
  }
  state.counters["rows"] = benchmark::Counter(
      static_cast<double>(env->db.state().GetTable("grades")->num_rows()));
}

void BM_BasicCheck(benchmark::State& state) { RunBasicCheck(state, true); }
void BM_BasicCheckNoPruning(benchmark::State& state) {
  RunBasicCheck(state, false);
}

}  // namespace

BENCHMARK(BM_ExecOnly)->Arg(1)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OptimizeOnly)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BasicCheck)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BasicCheckNoPruning)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

FGAC_BENCHMARK_MAIN();
