// Experiment E3 — Section 3.3 claim 3: "the rewritten query ... may have
// very different execution characteristics ... redundant joins would
// result in wasted execution time. The Non-Truman model does not suffer
// from this problem."
//
// Measures end-to-end latency of the same user query under:
//   * none          — no enforcement (lower bound),
//   * truman_pred   — Truman policy via a predicate-only view (VPD-style
//                     where-clause injection),
//   * truman_join   — Truman policy via a joining view (costudentgrades):
//                     the rewritten query carries a redundant join,
//   * non_truman    — validity check (uncached) + the ORIGINAL query.
//
// Expected shape: truman_join >> none as data grows; non_truman pays a
// near-constant checking overhead on top of none and does not scale with
// the redundant join.

#include <benchmark/benchmark.h>

#include "algebra/binder.h"
#include "bench/bench_report.h"
#include "bench/workload.h"
#include "exec/executor.h"
#include "sql/parser.h"

namespace {

using fgac::bench::LoadScaledUniversity;
using fgac::bench::UniversityScale;
using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

constexpr const char* kQuery =
    "select avg(grade) from grades where student-id = 's1'";

Database* MakeDb(int students) {
  auto* db = new Database();
  UniversityScale scale;
  scale.students = students;
  scale.courses = 40;
  LoadScaledUniversity(db, scale);
  fgac::bench::CreateStandardViews(db);
  if (!db->ExecuteScript("grant select on mygrades to public").ok()) {
    std::abort();
  }
  db->options().enable_validity_cache = false;  // cache measured in E6
  return db;
}

Database* DbForScale(int students) {
  // One database per scale, reused across benchmark registrations.
  static std::map<int, Database*>* dbs = new std::map<int, Database*>();
  auto it = dbs->find(students);
  if (it == dbs->end()) it = dbs->emplace(students, MakeDb(students)).first;
  return it->second;
}

void RunMode(benchmark::State& state, EnforcementMode mode,
             const char* truman_view) {
  Database* db = DbForScale(static_cast<int>(state.range(0)));
  if (truman_view != nullptr &&
      !db->catalog().SetTrumanView("grades", truman_view).ok()) {
    state.SkipWithError("policy setup failed");
    return;
  }
  SessionContext ctx("s1");
  ctx.set_mode(mode);
  for (auto _ : state) {
    auto result = db->Execute(kQuery, ctx);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result.value().relation.num_rows());
  }
  state.counters["rows"] = benchmark::Counter(
      static_cast<double>(db->state().GetTable("grades")->num_rows()));
}

// Execution phase in isolation: the query is parsed and bound once, each
// iteration only runs the physical engine. This is the number the
// vectorized executor is accountable for.
void BM_ExecOnly(benchmark::State& state) {
  Database* db = DbForScale(static_cast<int>(state.range(0)));
  auto stmt = fgac::sql::Parser::ParseSelect(kQuery);
  fgac::algebra::Binder binder(db->catalog(), {});
  auto plan = binder.BindSelect(*stmt.value());
  if (!plan.ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  for (auto _ : state) {
    auto rel = fgac::exec::ExecutePlan(plan.value(), db->state());
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rel.value().num_rows());
  }
  state.counters["rows"] = benchmark::Counter(
      static_cast<double>(db->state().GetTable("grades")->num_rows()));
}

void BM_None(benchmark::State& state) {
  RunMode(state, EnforcementMode::kNone, nullptr);
}
void BM_TrumanPredicateView(benchmark::State& state) {
  RunMode(state, EnforcementMode::kTruman, "mygrades");
}
void BM_TrumanJoinView(benchmark::State& state) {
  RunMode(state, EnforcementMode::kTruman, "costudentgrades");
}
void BM_NonTruman(benchmark::State& state) {
  RunMode(state, EnforcementMode::kNonTruman, nullptr);
}

}  // namespace

BENCHMARK(BM_ExecOnly)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_None)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TrumanPredicateView)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TrumanJoinView)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NonTruman)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMicrosecond);

FGAC_BENCHMARK_MAIN();
