// Experiment E15 — inter-query concurrency on the shared pipeline
// scheduler.
//
// Closed-loop multi-client benchmark: N client threads, each bound to its
// own principal, hammer the Database facade back-to-back over a
// policy-laden schema (authorization views granted per student, Non-Truman
// validity checks on every statement, auditing on — the production
// configuration). Each query decomposes into a small pipeline DAG
// (parallelism 2), so at N > 1 the DAGs of different sessions interleave
// on the one shared work-stealing pool.
//
// Reported per client count: aggregate throughput (qps) plus p50/p95/p99
// per-query latency from a power-of-two histogram — the scheduler's
// fairness shows up as a p99 that grows slower than the client count.
//
// The binary self-gates only on correctness (every query must succeed);
// throughput scaling is emitted for trend tracking but not gated, because
// on a single-core CI runner extra clients buy queueing, not speedup.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "bench/workload.h"
#include "common/metrics.h"
#include "core/database.h"

namespace {

using fgac::bench::CreateStandardViews;
using fgac::bench::EmitJsonLine;
using fgac::bench::LoadScaledUniversity;
using fgac::bench::UniversityScale;
using fgac::common::Histogram;
using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

constexpr int kPrincipals = 8;
constexpr int kItersPerClient = 150;

// Per-client statement mix: a granted-view scan (validity-checked,
// Non-Truman), a base-table point query the validity engine accepts
// unconditionally via the user's mygrades grant (the paper's Section 1
// inference), and an admin aggregate that decomposes into a scan+merge
// DAG.
const char* kViewQuery = "select * from mygrades";
const char* kAggQuery =
    "select course-id, avg(grade), count(*) from grades group by course-id";

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  UniversityScale scale;
  scale.students = 4000;
  scale.courses = 40;
  LoadScaledUniversity(db.get(), scale);
  CreateStandardViews(db.get());
  for (int p = 0; p < kPrincipals; ++p) {
    std::string user = "s" + std::to_string(p);
    for (const char* view :
         {"mygrades", "costudentgrades", "myregistrations"}) {
      auto r = db->ExecuteAsAdmin("grant select on " + std::string(view) +
                                  " to " + user);
      if (!r.ok()) {
        std::fprintf(stderr, "grant failed: %s\n", r.status().ToString().c_str());
        std::exit(2);
      }
    }
  }
  db->options().parallelism = 2;
  return db;
}

struct RunResult {
  double wall_s = 0;
  double qps = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  double avg_ns = 0;
  int failures = 0;
};

RunResult RunClients(Database* db, int clients, int iters) {
  Histogram latency;
  std::vector<int> failures(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([db, c, iters, &latency, &failures] {
      std::string user = "s" + std::to_string(c % kPrincipals);
      std::string point_query =
          "select grade from grades where student-id = '" + user + "'";
      SessionContext viewer(user);
      viewer.set_mode(EnforcementMode::kNonTruman);
      SessionContext admin("admin");
      admin.set_mode(EnforcementMode::kNone);
      for (int i = 0; i < iters; ++i) {
        const std::string& sql = i % 3 == 0   ? kAggQuery
                                 : i % 3 == 1 ? kViewQuery
                                              : point_query;
        const SessionContext& ctx = i % 3 == 0 ? admin : viewer;
        auto q0 = std::chrono::steady_clock::now();
        auto r = db->Execute(sql, ctx);
        auto q1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          std::fprintf(stderr, "query failed (%s): %s\n", sql.c_str(),
                       r.status().ToString().c_str());
          ++failures[static_cast<size_t>(c)];
          continue;
        }
        latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(q1 - q0)
                .count()));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  auto dt = std::chrono::steady_clock::now() - t0;

  RunResult res;
  res.wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(dt).count();
  uint64_t total = latency.count();
  res.qps = res.wall_s > 0 ? static_cast<double>(total) / res.wall_s : 0;
  res.p50_us = latency.ApproxPercentile(50);
  res.p95_us = latency.ApproxPercentile(95);
  res.p99_us = latency.ApproxPercentile(99);
  res.avg_ns = total > 0
                   ? static_cast<double>(latency.sum()) * 1000.0 /
                         static_cast<double>(total)
                   : 0;
  for (int f : failures) res.failures += f;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  // Accepts (and ignores) Google-Benchmark-style flags so run_all.sh can
  // pass one GBENCH_FLAGS to every binary.
  (void)argc;
  (void)argv;

  auto db = MakeDb();
  // Warm up: JIT-free engine, but the first statements pay validity-cache
  // misses and page-in; keep them out of the measured runs.
  RunClients(db.get(), 2, 20);

  int total_failures = 0;
  double qps1 = 0;
  for (int clients : {1, 2, 4, 8}) {
    RunResult r = RunClients(db.get(), clients, kItersPerClient);
    total_failures += r.failures;
    if (clients == 1) qps1 = r.qps;
    char extra[200];
    std::snprintf(extra, sizeof(extra),
                  ",\"clients\":%d,\"qps\":%.1f,\"p50_us\":%llu,"
                  "\"p95_us\":%llu,\"p99_us\":%llu",
                  clients, r.qps, static_cast<unsigned long long>(r.p50_us),
                  static_cast<unsigned long long>(r.p95_us),
                  static_cast<unsigned long long>(r.p99_us));
    EmitJsonLine("bench_concurrent_queries/clients:" + std::to_string(clients),
                 r.avg_ns, 0.0, extra);
    std::printf(
        "clients=%d  qps=%8.1f  p50=%6llu us  p95=%6llu us  p99=%6llu us"
        "  (x%.2f vs 1 client)\n",
        clients, r.qps, static_cast<unsigned long long>(r.p50_us),
        static_cast<unsigned long long>(r.p95_us),
        static_cast<unsigned long long>(r.p99_us),
        qps1 > 0 ? r.qps / qps1 : 0.0);
  }

  if (total_failures > 0) {
    std::fprintf(stderr, "FAIL: %d queries failed under concurrency\n",
                 total_failures);
    return 1;
  }
  std::printf("gate ok: all queries succeeded under concurrency\n");
  return 0;
}
