#!/usr/bin/env bash
# Runs every bench binary and aggregates their JSON-line outputs into one
# machine-readable BENCH_RESULTS.json.
#
# Usage:
#   bench/run_all.sh [output.json]
#
# Environment:
#   BUILD_DIR           build tree containing bench/ binaries (default: build)
#   GBENCH_FLAGS        extra flags passed to every binary, e.g.
#                       "--benchmark_min_time=0.1" (hand-rolled mains ignore
#                       their argv, so this is safe to set globally)
#   FGAC_BENCH_ONLY     optional extended-regex filter applied to the bench
#                       binary basenames (e.g. 'bench_(validity_basic|dag)');
#                       CI's quick gate uses this to run a curated subset.
#   FGAC_SEED_BASELINE  optional JSON-lines file with baseline measurements
#                       (same format); matching names gain a
#                       "speedup_vs_baseline" field in the output. Setting
#                       it to a path that does not exist is an error (a
#                       silently-missing baseline yields a results file with
#                       no speedup fields, which reads as a regression).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -n "${FGAC_SEED_BASELINE:-}" ] && [ ! -f "${FGAC_SEED_BASELINE}" ]; then
  echo "error: FGAC_SEED_BASELINE='${FGAC_SEED_BASELINE}' does not exist" >&2
  exit 2
fi

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_RESULTS.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

failed=0
for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bin" ] && [ -f "$bin" ] || continue
  if [ -n "${FGAC_BENCH_ONLY:-}" ] &&
     ! basename "$bin" | grep -Eq "${FGAC_BENCH_ONLY}"; then
    echo "== $(basename "$bin") (skipped by FGAC_BENCH_ONLY)" >&2
    continue
  fi
  echo "== $(basename "$bin")" >&2
  if ! FGAC_BENCH_JSON="$TMP" "$bin" ${GBENCH_FLAGS:-} >/dev/null 2>&1; then
    echo "   FAILED: $(basename "$bin")" >&2
    failed=1
  fi
done

python3 - "$TMP" "$OUT" "${FGAC_SEED_BASELINE:-}" <<'EOF'
import json, sys

def read_lines(path):
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out

runs = read_lines(sys.argv[1])
baseline = {}
if sys.argv[3]:
    for entry in read_lines(sys.argv[3]):
        baseline[entry["name"]] = entry

for entry in runs:
    base = baseline.get(entry["name"])
    if base and base.get("ns_per_op") and entry.get("ns_per_op"):
        entry["baseline_ns_per_op"] = base["ns_per_op"]
        entry["speedup_vs_baseline"] = round(
            base["ns_per_op"] / entry["ns_per_op"], 3)

doc = {"benchmarks": runs}
if baseline:
    doc["baseline_source"] = sys.argv[3]
with open(sys.argv[2], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(runs)} measurements)")
EOF

exit $failed
