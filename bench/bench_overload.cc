// Experiment E16 — graceful load shedding under open-loop overload.
//
// Unlike the closed-loop concurrency bench (E15), arrivals here come from
// a fixed-rate schedule that does not slow down when the server does —
// the regime where an unprotected engine's latency grows without bound.
// The database runs with admission control on (2 concurrent lanes, a
// 2-deep wait queue, shed-newest): the excess load past capacity must be
// TURNED AWAY with kOverloaded + a retry-after hint, while the admitted
// queries keep near-uncontended latency.
//
// Protocol:
//   1. measure uncontended service time (sequential closed loop) -> the
//      capacity estimate (lanes / mean-service) and the baseline p99;
//   2. open-loop sweep at 1x and 4x capacity: 8 dispatcher threads fire
//      queries on the schedule, recording admitted latency vs sheds;
//   3. emit goodput, shed rate and admitted p99 per load point.
//
// Self-gates (exit 1): queries may only succeed or shed; every shed must
// carry a parseable retry-after hint; at 4x capacity some excess must
// actually shed AND admitted p99 must stay within 2x the uncontended p99
// (+20ms absolute slack for scheduler noise on small CI runners) — the
// whole point of shedding is that the work we accept stays fast.
//
// CI gates overload_admitted_p99_4x against the seed baseline through
// bench/check_regression.py --require, so the overload path cannot
// silently drop out of the sweep.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "bench/workload.h"
#include "core/database.h"
#include "exec/admission.h"

namespace {

using Clock = std::chrono::steady_clock;
using fgac::StatusCode;
using fgac::bench::EmitJsonLine;
using fgac::bench::LoadScaledUniversity;
using fgac::bench::UniversityScale;
using fgac::core::Database;
using fgac::core::DatabaseOptions;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;
using fgac::exec::RetryAfterHintMs;

constexpr size_t kLanes = 2;
constexpr int kDispatchers = 8;
constexpr int kArrivalsPerLoad = 300;

const char* kQuery =
    "select course-id, avg(grade), count(*) from grades group by course-id";

std::unique_ptr<Database> MakeDb() {
  DatabaseOptions opts;
  opts.admission.max_concurrent = kLanes;
  opts.admission.max_queue = 2;
  auto db = std::make_unique<Database>(opts);
  UniversityScale scale;
  scale.students = 4000;
  scale.courses = 40;
  LoadScaledUniversity(db.get(), scale);
  return db;
}

double PercentileUs(std::vector<uint64_t> us, double p) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  size_t idx = static_cast<size_t>(p / 100.0 * static_cast<double>(us.size()));
  return static_cast<double>(us[std::min(idx, us.size() - 1)]);
}

struct LoadResult {
  double goodput_qps = 0;
  double shed_rate = 0;
  double admitted_p99_us = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  int errors = 0;  // anything that neither succeeded nor shed cleanly
};

/// Fires kArrivalsPerLoad queries at `rate_qps` from kDispatchers threads
/// (arrival i belongs to thread i % kDispatchers and departs at
/// t0 + i/rate, whether or not earlier queries have finished).
LoadResult RunOpenLoop(Database* db, double rate_qps) {
  std::mutex mu;
  std::vector<uint64_t> admitted_us;
  LoadResult res;
  auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate_qps));
  Clock::time_point t0 = Clock::now() + std::chrono::milliseconds(5);
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(kDispatchers);
  for (int d = 0; d < kDispatchers; ++d) {
    dispatchers.emplace_back([&, d] {
      SessionContext ctx("admin");
      ctx.set_mode(EnforcementMode::kNone);
      for (int i = d; i < kArrivalsPerLoad; i += kDispatchers) {
        std::this_thread::sleep_until(t0 + interval * i);
        Clock::time_point q0 = Clock::now();
        auto r = db->Execute(kQuery, ctx);
        Clock::time_point q1 = Clock::now();
        std::lock_guard<std::mutex> lock(mu);
        if (r.ok()) {
          ++res.admitted;
          admitted_us.push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(q1 - q0)
                  .count()));
        } else if (r.status().code() == StatusCode::kOverloaded &&
                   RetryAfterHintMs(r.status()) >= 1) {
          ++res.shed;
        } else {
          std::fprintf(stderr, "unexpected outcome: %s\n",
                       r.status().ToString().c_str());
          ++res.errors;
        }
      }
    });
  }
  for (std::thread& t : dispatchers) t.join();
  Clock::time_point t_end = Clock::now();
  double wall_s = std::chrono::duration_cast<std::chrono::duration<double>>(
                      t_end - t0)
                      .count();
  res.goodput_qps =
      wall_s > 0 ? static_cast<double>(res.admitted) / wall_s : 0;
  res.shed_rate = static_cast<double>(res.shed) /
                  static_cast<double>(kArrivalsPerLoad);
  res.admitted_p99_us = PercentileUs(admitted_us, 99.0);
  return res;
}

void EmitLoad(const std::string& name, const LoadResult& r) {
  char extra[160];
  std::snprintf(extra, sizeof(extra),
                ",\"goodput_qps\":%.1f,\"shed_rate\":%.3f,\"admitted\":%llu"
                ",\"shed\":%llu",
                r.goodput_qps, r.shed_rate,
                static_cast<unsigned long long>(r.admitted),
                static_cast<unsigned long long>(r.shed));
  EmitJsonLine(name, r.admitted_p99_us * 1000.0, /*rows_per_sec=*/0.0, extra);
}

}  // namespace

int main(int argc, char** argv) {
  // Accepts (and ignores) Google-Benchmark-style flags so run_all.sh can
  // pass one GBENCH_FLAGS to every binary.
  (void)argc;
  (void)argv;
  std::unique_ptr<Database> db = MakeDb();
  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);

  // Uncontended baseline: sequential closed loop (one warm-up to build the
  // columnar snapshots, then measured runs).
  constexpr int kBaselineIters = 150;
  std::vector<uint64_t> base_us;
  base_us.reserve(kBaselineIters);
  for (int i = 0; i < kBaselineIters + 1; ++i) {
    Clock::time_point q0 = Clock::now();
    auto r = db->Execute(kQuery, admin);
    Clock::time_point q1 = Clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "baseline query failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    if (i > 0) {
      base_us.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(q1 - q0)
              .count()));
    }
  }
  double mean_us = 0;
  for (uint64_t v : base_us) mean_us += static_cast<double>(v);
  mean_us /= static_cast<double>(base_us.size());
  double uncontended_p99_us = PercentileUs(base_us, 99.0);
  double capacity_qps =
      static_cast<double>(kLanes) * 1e6 / std::max(1.0, mean_us);
  EmitJsonLine("overload_uncontended_p99", uncontended_p99_us * 1000.0);
  std::printf("uncontended: mean %.0fus p99 %.0fus -> capacity ~%.0f qps\n",
              mean_us, uncontended_p99_us, capacity_qps);

  LoadResult at_1x = RunOpenLoop(db.get(), capacity_qps);
  EmitLoad("overload_admitted_p99_1x", at_1x);
  std::printf("1x: goodput %.0f qps, shed %.1f%%, admitted p99 %.0fus\n",
              at_1x.goodput_qps, at_1x.shed_rate * 100,
              at_1x.admitted_p99_us);

  LoadResult at_4x = RunOpenLoop(db.get(), 4.0 * capacity_qps);
  EmitLoad("overload_admitted_p99_4x", at_4x);
  std::printf("4x: goodput %.0f qps, shed %.1f%%, admitted p99 %.0fus\n",
              at_4x.goodput_qps, at_4x.shed_rate * 100,
              at_4x.admitted_p99_us);

  int rc = 0;
  if (at_1x.errors + at_4x.errors > 0) {
    std::fprintf(stderr,
                 "FAIL: %d queries neither succeeded nor shed cleanly\n",
                 at_1x.errors + at_4x.errors);
    rc = 1;
  }
  if (at_4x.shed == 0) {
    std::fprintf(stderr,
                 "FAIL: no sheds at 4x capacity — admission control is not "
                 "engaging\n");
    rc = 1;
  }
  double p99_limit_us = 2.0 * uncontended_p99_us + 20000.0;
  if (at_4x.admitted_p99_us > p99_limit_us) {
    std::fprintf(stderr,
                 "FAIL: admitted p99 under 4x overload (%.0fus) exceeds 2x "
                 "uncontended + slack (%.0fus)\n",
                 at_4x.admitted_p99_us, p99_limit_us);
    rc = 1;
  }
  return rc;
}
