// Audit-overhead bench and self-gate — the cost of the security audit log
// that is ON by default for every statement.
//
// Three end-to-end configurations of the same point SELECT through the
// Database facade:
//   audit_off      — AuditOptions::enabled = false: Append() is a no-op
//                    and no flusher thread runs;
//   audit_on       — the production default: one event per statement
//                    through the lock-free ring into in-memory retention;
//   audit_on_sink  — additionally persisting JSON lines to a sink file
//                    (no fsync: the flusher batches writes off the query
//                    path).
//
// The design budget (EXPERIMENTS.md): always-on auditing within 2% of
// audit-off on this workload. The binary SELF-GATES and exits 1 when a
// budget is blown, so CI's bench job catches a regression without
// depending on cross-machine baselines:
//
//   1. Append() — the ONLY work added to the query path — must stay under
//      2 us single-threaded and under 4 us across 4 contending producers.
//      It measures ~75 ns today; an accidental mutex, syscall, or
//      allocation storm lands in microseconds and trips this reliably
//      even on a noisy runner.
//   2. The end-to-end audit-on vs audit-off delta gets only a 50%
//      catastrophic backstop. On a single-core CI runner the run-to-run
//      noise of the full query path is +/-10% — far above the real
//      overhead (~0.1% for this workload) — so a tight end-to-end gate
//      would flap. The measured delta is still emitted to the JSON
//      side-channel for trend tracking.
//
// Trials are interleaved round-robin across the configurations: on a
// single-core CI runner, sequential per-config loops read machine drift
// as tens of percent of fake "overhead".

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "bench/workload.h"
#include "common/audit.h"
#include "core/database.h"

namespace {

using fgac::bench::EmitJsonLine;
using fgac::bench::LoadScaledUniversity;
using fgac::bench::UniversityScale;
using fgac::common::AuditEvent;
using fgac::common::AuditLog;
using fgac::common::AuditOptions;
using fgac::core::Database;
using fgac::core::DatabaseOptions;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

// A cheap point query: execution cost is small, so the per-statement audit
// overhead is as visible as it gets — a worst case for the budget.
constexpr const char* kQuery =
    "select name from students where student-id = 's7'";

std::unique_ptr<Database> MakeDb(bool audit_enabled,
                                 const std::string& sink_path) {
  DatabaseOptions opts;
  opts.audit.enabled = audit_enabled;
  opts.audit.sink_path = sink_path;
  auto db = std::make_unique<Database>(std::move(opts));
  UniversityScale scale;
  scale.students = 2000;
  scale.courses = 20;
  LoadScaledUniversity(db.get(), scale);
  return db;
}

/// ns/op for `iters` facade executions, after `warmup` unmeasured ones.
double MeasureQueryNs(Database* db, int warmup, int iters) {
  SessionContext ctx("admin");
  ctx.set_mode(EnforcementMode::kNone);
  for (int i = 0; i < warmup; ++i) {
    auto r = db->Execute(kQuery, ctx);
    if (!r.ok()) {
      std::fprintf(stderr, "bench query failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(2);
    }
  }
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto r = db->Execute(kQuery, ctx);
    if (!r.ok()) std::exit(2);
  }
  auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                 .count()) /
         iters;
}

/// Best-of-`trials` for each config, with trials INTERLEAVED round-robin
/// across the configs. Sequential per-config measurement reads machine
/// drift (cache state, thermal, page cache) as audit overhead — on a
/// single-core runner that artifact alone exceeds the real cost several
/// times over. Interleaving makes every config sample every phase of the
/// drift; the per-config minimum then compares like with like.
std::vector<double> BestOfInterleavedTrials(const std::vector<Database*>& dbs,
                                            int trials, int iters) {
  std::vector<double> best(dbs.size(), 0.0);
  for (int t = 0; t < trials; ++t) {
    for (size_t i = 0; i < dbs.size(); ++i) {
      double ns = MeasureQueryNs(dbs[i], /*warmup=*/iters / 4, iters);
      if (t == 0 || ns < best[i]) best[i] = ns;
    }
  }
  return best;
}

AuditEvent MakeEvent(int i) {
  AuditEvent ev;
  ev.user = "u1";
  ev.session = "s1";
  ev.mode = "none";
  ev.statement = kQuery;
  ev.statement_hash = static_cast<uint64_t>(i);
  ev.verdict = "none";
  return ev;
}

double MeasureAppendNs(int threads, uint64_t per_thread) {
  AuditOptions opts;
  opts.ring_capacity = 1 << 14;
  opts.retain_events = 1024;
  AuditLog log(opts);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&log, per_thread] {
      for (uint64_t i = 0; i < per_thread; ++i) {
        log.Append(MakeEvent(static_cast<int>(i)));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                 .count()) /
         static_cast<double>(per_thread * threads);
}

}  // namespace

int main(int argc, char** argv) {
  // Accepts (and ignores) Google-Benchmark-style flags so run_all.sh can
  // pass one GBENCH_FLAGS to every binary.
  (void)argc;
  (void)argv;
  constexpr int kTrials = 5;
  constexpr int kIters = 1500;

  auto off = MakeDb(/*audit_enabled=*/false, "");
  auto on = MakeDb(/*audit_enabled=*/true, "");
  const std::string sink = "/tmp/fgac_bench_audit_sink.jsonl";
  std::remove(sink.c_str());
  auto on_sink = MakeDb(/*audit_enabled=*/true, sink);

  std::vector<double> best = BestOfInterleavedTrials(
      {off.get(), on.get(), on_sink.get()}, kTrials, kIters);
  double off_ns = best[0];
  double on_ns = best[1];
  double sink_ns = best[2];
  double overhead_pct = (on_ns - off_ns) / off_ns * 100.0;
  double sink_pct = (sink_ns - off_ns) / off_ns * 100.0;

  double append_ns = MeasureAppendNs(1, 200000);
  double append4_ns = MeasureAppendNs(4, 100000);

  char extra[160];
  std::snprintf(extra, sizeof(extra), ",\"overhead_pct\":%.2f",
                overhead_pct);
  EmitJsonLine("bench_audit/query_audit_off", off_ns);
  EmitJsonLine("bench_audit/query_audit_on", on_ns, 0.0, extra);
  std::snprintf(extra, sizeof(extra), ",\"overhead_pct\":%.2f", sink_pct);
  EmitJsonLine("bench_audit/query_audit_on_sink", sink_ns, 0.0, extra);
  EmitJsonLine("bench_audit/append_1thread", append_ns);
  EmitJsonLine("bench_audit/append_4threads", append4_ns);
  std::remove(sink.c_str());

  std::printf("audit off     : %10.0f ns/op\n", off_ns);
  std::printf("audit on      : %10.0f ns/op  (%+.2f%%)\n", on_ns,
              overhead_pct);
  std::printf("audit on+sink : %10.0f ns/op  (%+.2f%%)\n", sink_ns,
              sink_pct);
  std::printf("append        : %10.1f ns/op (1 thread)\n", append_ns);
  std::printf("append        : %10.1f ns/op (4 threads)\n", append4_ns);

  // Self-gates (see the file comment for why the tight gate is on the
  // append path and the end-to-end delta only gets a backstop).
  int failures = 0;
  constexpr double kAppendNsBudget = 2000.0;
  constexpr double kAppendContendedNsBudget = 4000.0;
  constexpr double kCliffPct = 50.0;
  if (append_ns > kAppendNsBudget) {
    std::fprintf(stderr,
                 "FAIL: Append() costs %.0f ns > %.0f ns budget — something "
                 "heavy crept onto the query path\n",
                 append_ns, kAppendNsBudget);
    ++failures;
  }
  if (append4_ns > kAppendContendedNsBudget) {
    std::fprintf(stderr,
                 "FAIL: contended Append() costs %.0f ns > %.0f ns budget\n",
                 append4_ns, kAppendContendedNsBudget);
    ++failures;
  }
  if (overhead_pct > kCliffPct) {
    std::fprintf(stderr,
                 "FAIL: always-on end-to-end overhead %.2f%% exceeds the "
                 "%.0f%% catastrophic backstop (documented target: 2%%)\n",
                 overhead_pct, kCliffPct);
    ++failures;
  }
  if (failures > 0) return 1;
  std::printf(
      "gate ok: append %.0f ns (<= %.0f), contended %.0f ns (<= %.0f), "
      "end-to-end %+.2f%% (backstop %.0f%%)\n",
      append_ns, kAppendNsBudget, append4_ns, kAppendContendedNsBudget,
      overhead_pct, kCliffPct);
  return 0;
}
