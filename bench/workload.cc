#include "bench/workload.h"

#include <chrono>
#include <cstdio>
#include <random>

namespace fgac::bench {

namespace {

void MustRun(core::Database* db, const std::string& sql) {
  Status s = db->ExecuteScript(sql);
  if (!s.ok()) {
    std::fprintf(stderr, "workload setup failed: %s\nsql: %.300s\n",
                 s.ToString().c_str(), sql.c_str());
    std::abort();
  }
}

}  // namespace

void LoadScaledUniversity(core::Database* db, const UniversityScale& scale,
                          uint32_t seed) {
  MustRun(db, R"sql(
    create table students (
      student-id varchar not null primary key,
      name varchar not null,
      type varchar not null);
    create table courses (
      course-id varchar not null primary key,
      name varchar not null);
    create table registered (
      student-id varchar not null references students,
      course-id varchar not null references courses,
      primary key (student-id, course-id));
    create table grades (
      student-id varchar not null references students,
      course-id varchar not null references courses,
      grade double not null,
      primary key (student-id, course-id));
  )sql");

  // Bulk-load through the storage layer (bypassing per-row SQL parsing so
  // large scales stay fast); constraints hold by construction.
  std::mt19937 rng(seed);
  storage::TableData* students = db->state().GetMutableTable("students");
  storage::TableData* courses = db->state().GetMutableTable("courses");
  storage::TableData* registered = db->state().GetMutableTable("registered");
  storage::TableData* grades = db->state().GetMutableTable("grades");

  for (int c = 0; c < scale.courses; ++c) {
    courses->Insert({Value::String("c" + std::to_string(c)),
                     Value::String("course " + std::to_string(c))});
  }
  std::uniform_real_distribution<double> grade_dist(1.0, 4.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int s = 0; s < scale.students; ++s) {
    std::string sid = "s" + std::to_string(s);
    students->Insert({Value::String(sid),
                      Value::String("name" + std::to_string(s)),
                      Value::String(s % 3 == 0 ? "parttime" : "fulltime")});
    // Distinct course picks per student.
    int base = static_cast<int>(rng() % static_cast<uint32_t>(scale.courses));
    for (int r = 0; r < scale.registrations_per_student; ++r) {
      int course = (base + r * 7 + 1) % scale.courses;
      std::string cid = "c" + std::to_string(course);
      registered->Insert({Value::String(sid), Value::String(cid)});
      if (unit(rng) < scale.graded_fraction) {
        double g = grade_dist(rng);
        grades->Insert({Value::String(sid), Value::String(cid),
                        Value::Double(static_cast<int>(g * 2) / 2.0)});
      }
    }
  }
}

void CreateStandardViews(core::Database* db) {
  MustRun(db, R"sql(
    create authorization view mygrades as
      select * from grades where student-id = $user-id;
    create authorization view costudentgrades as
      select grades.* from grades, registered
      where registered.student-id = $user-id
        and grades.course-id = registered.course-id;
    create authorization view myregistrations as
      select * from registered where student-id = $user-id;
    create authorization view avggrades as
      select course-id, avg(grade) from grades group by course-id;
    create authorization view regstudents as
      select registered.course-id, students.name, students.type
      from registered, students
      where students.student-id = registered.student-id;
  )sql");
}

void CreateSyntheticViews(core::Database* db, int count,
                          const std::string& user) {
  std::string sql;
  // A table disconnected from the university query graph: views over it
  // can never help a grades query, so they are prunable (Section 5.6's
  // "eliminate authorization views that cannot possibly be of use").
  if (!db->catalog().HasTable("audit_log")) {
    sql += "create table audit_log (entry-id int not null primary key, "
           "detail varchar);";
  }
  for (int i = 0; i < count; ++i) {
    std::string name = "synthview_" + std::to_string(i);
    // Alternate shapes so the view population is heterogeneous. Constants
    // use the 'zN' namespace so no synthetic view accidentally coincides
    // with a benchmark query's constant.
    switch (i % 4) {
      case 0:
        sql += "create authorization view " + name +
               " as select * from grades where course-id = 'z" +
               std::to_string(i) + "';";
        break;
      case 1:
        sql += "create authorization view " + name +
               " as select student-id, grade from grades where grade >= " +
               std::to_string(4.5 + (i % 6) * 0.5) + ";";
        break;
      case 2:
        sql += "create authorization view " + name +
               " as select grades.* from grades, registered"
               " where grades.student-id = registered.student-id"
               " and registered.course-id = 'z" +
               std::to_string(i % 17) + "';";
        break;
      default:
        sql += "create authorization view " + name +
               " as select * from audit_log where entry-id >= " +
               std::to_string(i) + ";";
        break;
    }
    sql += "grant select on " + name + " to " + user + ";";
  }
  MustRun(db, sql);
}

std::string ChainJoinQuery(core::Database* db, int n) {
  std::string ddl;
  for (int i = 0; i < n; ++i) {
    std::string t = "bt" + std::to_string(i);
    if (!db->catalog().HasTable(t)) {
      ddl += "create table " + t + " (k int not null primary key, v int);";
    }
  }
  if (!ddl.empty()) MustRun(db, ddl);
  std::string sql = "select * from ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) sql += ", ";
    sql += "bt" + std::to_string(i);
  }
  sql += " where ";
  for (int i = 0; i + 1 < n; ++i) {
    if (i > 0) sql += " and ";
    sql += "bt" + std::to_string(i) + ".k = bt" + std::to_string(i + 1) + ".k";
  }
  return sql;
}

std::vector<std::string> CreateChainPairViews(core::Database* db, int n) {
  // Pairwise views must exist before their tables can be referenced.
  (void)ChainJoinQuery(db, n);
  std::vector<std::string> names;
  std::string ddl;
  for (int i = 0; i + 1 < n; i += 2) {
    std::string lo = "bt" + std::to_string(i);
    std::string hi = "bt" + std::to_string(i + 1);
    std::string name = "chainpair" + std::to_string(i / 2);
    names.push_back(name);
    if (db->catalog().GetView(name) != nullptr) continue;
    ddl += "create authorization view " + name + " as select * from " + lo +
           ", " + hi + " where " + lo + ".k = " + hi + ".k;";
  }
  if (n % 2 == 1) {
    std::string tail = "bt" + std::to_string(n - 1);
    std::string name = "chaintail" + std::to_string(n - 1);
    names.push_back(name);
    if (db->catalog().GetView(name) == nullptr) {
      ddl += "create authorization view " + name + " as select * from " +
             tail + ";";
    }
  }
  if (!ddl.empty()) MustRun(db, ddl);
  return names;
}

double TimeMs(int iters, const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() /
         iters;
}

}  // namespace fgac::bench
