// Experiment E11 (ablation) — each rule family's contribution to the
// engine's completeness, measured on the E10 example battery: disable one
// family at a time and count how many of the paper's worked examples are
// still admitted, plus the average checking latency.
//
// This quantifies the "degree of completeness" discussion the paper defers
// to future work: which inference machinery earns which acceptances.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "algebra/binder.h"
#include "bench/bench_report.h"
#include "bench/workload.h"
#include "core/auth_view.h"
#include "core/validity.h"
#include "sql/parser.h"

namespace {

using fgac::core::Database;
using fgac::core::SessionContext;
using fgac::core::ValidityOptions;

struct Case {
  const char* user;
  const char* sql;
};

// The accepted subset of the E10 battery (every entry is admitted by the
// full engine; ablations can only lose some of them).
const Case kAccepted[] = {
    {"11", "select * from grades where student-id = '11'"},
    {"11",
     "select course-id from grades where student-id = '11' and grade = 4.0"},
    {"11", "select avg(grade) from grades where student-id = '11'"},
    {"agguser", "select avg(grade) from grades where course-id = 'cs101'"},
    {"lcuser", "select avg(grade) from grades where course-id = 'cs101'"},
    {"11", "select * from grades where course-id = 'cs101'"},
    {"11", "select distinct * from grades where course-id = 'cs101'"},
    {"u51", "select distinct name, type from students"},
    {"u51",
     "select distinct name from students where students.type = 'fulltime'"},
    {"11",
     "select distinct name from students, feespaid "
     "where students.student-id = feespaid.student-id"},
    {"secretary", "select * from grades where student-id = '12'"},
    // Section 5.6.2's future-work case (redundant join decomposition).
    {"rj",
     "select registered.student-id, courses.name "
     "from registered, grades, courses "
     "where registered.student-id = grades.student-id "
     "and registered.course-id = grades.course-id "
     "and grades.course-id = courses.course-id"},
};

struct Ablation {
  const char* name;
  void (*apply)(ValidityOptions*);
};

const Ablation kAblations[] = {
    {"full engine", [](ValidityOptions*) {}},
    {"no subsumption",
     [](ValidityOptions* o) { o->expand.enable_subsumption = false; }},
    {"no aggregate rules",
     [](ValidityOptions* o) { o->expand.enable_aggregate_rules = false; }},
    {"no join commute/assoc",
     [](ValidityOptions* o) {
       o->expand.enable_join_commute = false;
       o->expand.enable_join_assoc = false;
     }},
    {"no distinct elimination",
     [](ValidityOptions* o) { o->expand.enable_distinct_elim = false; }},
    {"no U3/C3 (basic only)",
     [](ValidityOptions* o) {
       o->enable_complex_rules = false;
       o->enable_conditional_rules = false;
     }},
    {"no conditional rules",
     [](ValidityOptions* o) { o->enable_conditional_rules = false; }},
    {"no access patterns",
     [](ValidityOptions* o) { o->enable_access_patterns = false; }},
    {"no redundant-join (5.6.2)",
     [](ValidityOptions* o) {
       o->enable_redundant_join_decomposition = false;
     }},
};

}  // namespace

int main() {
  Database db;
  fgac::Status setup = db.ExecuteScript(R"sql(
    create table students (
      student-id varchar not null primary key,
      name varchar not null, type varchar not null);
    create table courses (
      course-id varchar not null primary key, name varchar not null);
    create table registered (
      student-id varchar not null references students,
      course-id varchar not null references courses,
      primary key (student-id, course-id));
    create table grades (
      student-id varchar not null references students,
      course-id varchar not null references courses,
      grade double not null, primary key (student-id, course-id));
    create table feespaid (student-id varchar not null primary key);
    insert into students values
      ('11','alice','fulltime'), ('12','bob','fulltime'),
      ('13','carol','parttime'), ('14','dave','parttime');
    insert into courses values ('cs101','intro'), ('cs202','db'),
      ('ee150','circuits');
    insert into registered values
      ('11','cs101'), ('11','cs202'), ('12','cs101'), ('12','ee150'),
      ('13','cs202'), ('14','ee150');
    insert into grades values
      ('11','cs101',4.0), ('12','cs101',3.0), ('11','cs202',3.5),
      ('13','cs202',2.0);
    insert into feespaid values ('11'), ('12');
    create inclusion dependency esr
      on students (student-id) references registered (student-id);
    create inclusion dependency ftr
      on students (student-id) where type = 'fulltime'
      references registered (student-id);
    create inclusion dependency fpr
      on feespaid (student-id) references registered (student-id);
    create authorization view mygrades as
      select * from grades where student-id = $user-id;
    create authorization view costudentgrades as
      select grades.* from grades, registered
      where registered.student-id = $user-id
        and grades.course-id = registered.course-id;
    create authorization view myregistrations as
      select * from registered where student-id = $user-id;
    create authorization view avggrades as
      select course-id, avg(grade) from grades group by course-id;
    create authorization view lcavggrades as
      select course-id, avg(grade) from grades
      group by course-id having count(*) >= 2;
    create authorization view regstudents as
      select registered.course-id, students.name, students.type
      from registered, students
      where students.student-id = registered.student-id;
    create authorization view regstudentsfull as
      select students.*, registered.course-id from registered, students
      where students.student-id = registered.student-id;
    create authorization view allfees as select * from feespaid;
    create authorization view singlegrade as
      select * from grades where student-id = $$1;
    create authorization view reg_grades_full as
      select registered.*, grades.* from registered, grades
      where registered.student-id = grades.student-id
        and registered.course-id = grades.course-id;
    create authorization view grades_courses_full as
      select grades.*, courses.* from grades, courses
      where grades.course-id = courses.course-id;
    grant select on mygrades to 11;
    grant select on costudentgrades to 11;
    grant select on myregistrations to 11;
    grant select on regstudentsfull to 11;
    grant select on allfees to 11;
    grant select on regstudents to u51;
    grant select on avggrades to agguser;
    grant select on lcavggrades to lcuser;
    grant select on singlegrade to secretary;
    grant select on reg_grades_full to rj;
    grant select on grades_courses_full to rj;
  )sql");
  if (!setup.ok()) {
    std::printf("setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }

  constexpr size_t kTotal = std::size(kAccepted);
  std::printf(
      "E11 (ablation): worked-example acceptances per disabled rule "
      "family (out of %zu)\n\n", kTotal);
  std::printf("%-26s | %-10s | %s\n", "configuration", "accepted",
              "avg check ms");
  std::printf("%s\n", std::string(56, '-').c_str());

  for (const Ablation& ablation : kAblations) {
    ValidityOptions options;
    ablation.apply(&options);
    size_t accepted = 0;
    double total_ms = 0;
    for (const Case& c : kAccepted) {
      SessionContext ctx(c.user);
      auto stmt = fgac::sql::Parser::ParseSelect(c.sql);
      fgac::algebra::Binder binder(db.catalog(),
                                   {ctx.params(), /*access=*/false});
      auto plan = binder.BindSelect(*stmt.value());
      if (!plan.ok()) continue;
      auto views = fgac::core::InstantiateAvailableViews(db.catalog(), ctx);
      if (!views.ok()) continue;
      auto start = std::chrono::steady_clock::now();
      fgac::core::ValidityChecker checker(db.catalog(), &db.state(), options);
      auto report = checker.Check(plan.value(), views.value());
      auto end = std::chrono::steady_clock::now();
      total_ms +=
          std::chrono::duration<double, std::milli>(end - start).count();
      if (report.ok() && report.value().valid) ++accepted;
    }
    std::printf("%-26s | %6zu/%-3zu | %10.2f\n", ablation.name, accepted,
                kTotal, total_ms / kTotal);
    fgac::bench::EmitJsonLine(std::string("rule_ablation/") + ablation.name,
                              total_ms / kTotal * 1e6, 0.0,
                              ",\"accepted\":" + std::to_string(accepted));
  }
  std::printf(
      "\nReading the table: the full engine admits every example; each\n"
      "ablation loses exactly the examples that motivated that machinery\n"
      "(soundness is unaffected — ablations only ever reject more).\n");
  return 0;
}
