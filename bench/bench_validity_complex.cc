// Experiment E5 — Section 5.6 claim: "The complex inference rules do
// require equivalence rules to be applied to the views, which can be
// somewhat expensive in the presence of a large number of authorization
// views." and the proposed mitigation "we can eliminate authorization
// views that cannot possibly be of use in validating the query."
//
// Measures full U3/C3 checking latency as the number of granted views
// grows, with pruning on and off. A fraction of the synthetic views join
// two tables, so expanding them is the dominant cost.
//
// Expected shape: complex checking grows clearly faster with the view
// count than E4's basic checking; pruning flattens the curve (most
// synthetic views touch other course slices and are eliminated).

#include <benchmark/benchmark.h>

#include "bench/bench_report.h"

#include "algebra/binder.h"
#include "bench/workload.h"
#include "core/auth_view.h"
#include "core/validity.h"
#include "sql/parser.h"

namespace {

using fgac::core::Database;
using fgac::core::InstantiatedView;
using fgac::core::SessionContext;

// A query that needs the complex machinery: conditional validity of all
// grades of one course via costudentgrades + myregistrations (rule C3).
constexpr const char* kQuery = "select * from grades where course-id = 'c3'";

struct Env {
  Database db;
  SessionContext ctx{"s1"};
  fgac::algebra::PlanPtr plan;
  std::vector<InstantiatedView> views;
};

Env* EnvForViews(int num_views) {
  static std::map<int, Env*>* envs = new std::map<int, Env*>();
  auto it = envs->find(num_views);
  if (it != envs->end()) return it->second;
  auto* env = new Env();
  fgac::bench::UniversityScale scale;
  scale.students = 200;
  fgac::bench::LoadScaledUniversity(&env->db, scale);
  fgac::bench::CreateStandardViews(&env->db);
  // Make sure s1 is registered for c3 so the C3 probe succeeds.
  env->db.state().GetMutableTable("registered")->Insert(
      {fgac::Value::String("s1"), fgac::Value::String("c3")});
  if (!env->db
           .ExecuteScript("grant select on costudentgrades to s1;"
                          "grant select on myregistrations to s1")
           .ok()) {
    std::abort();
  }
  fgac::bench::CreateSyntheticViews(&env->db, num_views, "s1");
  auto stmt = fgac::sql::Parser::ParseSelect(kQuery);
  fgac::algebra::Binder binder(env->db.catalog(), {});
  env->plan = binder.BindSelect(*stmt.value()).value();
  env->views =
      fgac::core::InstantiateAvailableViews(env->db.catalog(), env->ctx)
          .value();
  envs->emplace(num_views, env);
  return env;
}

void RunComplexCheck(benchmark::State& state, bool prune) {
  Env* env = EnvForViews(static_cast<int>(state.range(0)));
  fgac::core::ValidityOptions options;
  options.prune_views = prune;
  size_t memo_exprs = 0, pruned = 0;
  for (auto _ : state) {
    fgac::core::ValidityChecker checker(env->db.catalog(), &env->db.state(),
                                        options);
    auto report = checker.Check(env->plan, env->views);
    if (!report.ok() || !report.value().valid) {
      state.SkipWithError("expected the query to be conditionally valid");
      return;
    }
    memo_exprs = report.value().memo_exprs;
    pruned = report.value().views_pruned;
    benchmark::DoNotOptimize(report);
  }
  state.counters["memo_exprs"] =
      benchmark::Counter(static_cast<double>(memo_exprs));
  state.counters["views_pruned"] =
      benchmark::Counter(static_cast<double>(pruned));
}

void BM_ComplexCheck(benchmark::State& state) { RunComplexCheck(state, true); }
void BM_ComplexCheckNoPruning(benchmark::State& state) {
  RunComplexCheck(state, false);
}

// Ablation: complex rules disabled on the same query — it must then be
// rejected, showing U1/U2 alone cannot admit the C3 workload.
void BM_BasicRulesOnlyRejects(benchmark::State& state) {
  Env* env = EnvForViews(static_cast<int>(state.range(0)));
  fgac::core::ValidityOptions options;
  options.enable_complex_rules = false;
  options.enable_conditional_rules = false;
  for (auto _ : state) {
    fgac::core::ValidityChecker checker(env->db.catalog(), &env->db.state(),
                                        options);
    auto report = checker.Check(env->plan, env->views);
    if (!report.ok() || report.value().valid) {
      state.SkipWithError("expected rejection under basic rules");
      return;
    }
    benchmark::DoNotOptimize(report);
  }
}

}  // namespace

BENCHMARK(BM_ComplexCheck)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ComplexCheckNoPruning)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BasicRulesOnlyRejects)->Arg(0)->Arg(64)
    ->Unit(benchmark::kMillisecond);

FGAC_BENCHMARK_MAIN();
