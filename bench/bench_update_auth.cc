// Experiment E8 — Section 4.4: "checking validity of updates is a simpler
// task than validity checking for queries. We consider updates
// individually, and checking if the insertion/deletion/update of a
// particular tuple is authorized only requires evaluation of a (fully
// instantiated) predicate."
//
// Measures INSERT/UPDATE/DELETE throughput with and without authorization
// rules, against the cost of a full query-validity check for comparison.
//
// Expected shape: per-tuple update authorization adds a small, constant
// predicate-evaluation cost — orders of magnitude below query inference.

#include <benchmark/benchmark.h>

#include "bench/bench_report.h"
#include "bench/workload.h"
#include "core/update_auth.h"

namespace {

using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

Database* FreshDb(bool with_rules) {
  auto* db = new Database();
  fgac::bench::UniversityScale scale;
  scale.students = 300;
  fgac::bench::LoadScaledUniversity(db, scale);
  fgac::bench::CreateStandardViews(db);
  if (with_rules &&
      !db->ExecuteScript(
             "authorize insert on registered "
             "where registered.student-id = $user-id;"
             "authorize delete on registered "
             "where registered.student-id = $user-id;"
             "authorize update on grades (grade) "
             "where old(grades.student-id) = $user-id;"
             "grant select on mygrades to public")
           .ok()) {
    std::abort();
  }
  return db;
}

void BM_InsertNoEnforcement(benchmark::State& state) {
  Database* db = FreshDb(false);
  SessionContext ctx("s1");
  ctx.set_mode(EnforcementMode::kNone);
  int i = 0;
  for (auto _ : state) {
    // Fresh course each time so PK stays unique.
    std::string course = "x" + std::to_string(i++);
    if (!db->ExecuteAsAdmin("insert into courses values ('" + course +
                            "', 'n')")
             .ok()) {
      state.SkipWithError("insert failed");
      return;
    }
  }
  delete db;
}

void BM_InsertWithAuthorization(benchmark::State& state) {
  Database* db = FreshDb(true);
  SessionContext ctx("s1");
  ctx.set_mode(EnforcementMode::kNonTruman);
  // Pre-create target courses without registrations (iteration count is
  // fixed below, so the bound is known).
  for (int i = 0; i <= static_cast<int>(state.max_iterations); ++i) {
    std::string c = "y" + std::to_string(i);
    if (!db->ExecuteAsAdmin("insert into courses values ('" + c + "', 'n')")
             .ok()) {
      state.SkipWithError("setup failed");
      return;
    }
  }
  int i = 0;
  for (auto _ : state) {
    std::string sql = "insert into registered values ('s1', 'y" +
                      std::to_string(i++) + "')";
    auto r = db->Execute(sql, ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  delete db;
}

void BM_AuthorizerPredicateOnly(benchmark::State& state) {
  // The pure per-tuple check (the paper's "evaluation of a fully
  // instantiated predicate"), isolated from storage costs.
  Database* db = FreshDb(true);
  SessionContext ctx("s1");
  ctx.set_mode(EnforcementMode::kNonTruman);
  fgac::core::UpdateAuthorizer authorizer(db->catalog(), ctx);
  fgac::Row tuple = {fgac::Value::String("s1"), fgac::Value::String("c3")};
  for (auto _ : state) {
    auto ok = authorizer.CheckInsert("registered", tuple);
    if (!ok.ok() || !ok.value()) {
      state.SkipWithError("expected authorized");
      return;
    }
    benchmark::DoNotOptimize(ok);
  }
  delete db;
}

void BM_QueryValidityForComparison(benchmark::State& state) {
  Database* db = FreshDb(true);
  db->options().enable_validity_cache = false;
  SessionContext ctx("s1");
  ctx.set_mode(EnforcementMode::kNonTruman);
  for (auto _ : state) {
    auto report = db->CheckQueryValidity(
        "select grade from grades where student-id = 's1'", ctx);
    if (!report.ok() || !report.value().valid) {
      state.SkipWithError("expected valid");
      return;
    }
    benchmark::DoNotOptimize(report);
  }
  delete db;
}

}  // namespace

BENCHMARK(BM_InsertNoEnforcement)
    ->Iterations(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InsertWithAuthorization)
    ->Iterations(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AuthorizerPredicateOnly)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryValidityForComparison)->Unit(benchmark::kMicrosecond);

FGAC_BENCHMARK_MAIN();
