// Side-by-side comparison of the three enforcement modes on the queries of
// Section 3.3, showing exactly why the paper argues against transparent
// query modification: the Truman model returns plausible-looking but
// misleading answers, while the Non-Truman model either answers truthfully
// or rejects.
//
//   $ ./examples/truman_vs_nontruman

#include <cstdio>
#include <string>

#include "core/database.h"

using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

namespace {

std::string OneValue(Database& db, const SessionContext& ctx,
                     const std::string& sql) {
  auto result = db.Execute(sql, ctx);
  if (!result.ok()) return "REJECTED";
  if (result.value().relation.num_rows() == 0) return "(empty)";
  return result.value().relation.rows()[0][0].ToString();
}

}  // namespace

int main() {
  Database db;
  fgac::Status setup = db.ExecuteScript(R"sql(
    create table grades (
      student-id varchar not null,
      course-id varchar not null,
      grade double not null,
      primary key (student-id, course-id));
    insert into grades values
      ('11', 'cs101', 4.0), ('12', 'cs101', 3.0),
      ('11', 'cs202', 3.5), ('13', 'cs202', 2.0),
      ('12', 'cs202', 2.5), ('13', 'cs101', 1.5);

    create authorization view mygrades as
      select * from grades where student-id = $user-id;
    create authorization view avggrades as
      select course-id, avg(grade) from grades group by course-id;
    grant select on mygrades to 11;
    grant select on avggrades to 11;
  )sql");
  if (!setup.ok()) {
    std::printf("setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }
  // Truman policy: substitute grades with the user's own slice.
  if (!db.catalog().SetTrumanView("grades", "mygrades").ok()) return 1;

  SessionContext none("11");
  none.set_mode(EnforcementMode::kNone);
  SessionContext truman("11");
  truman.set_mode(EnforcementMode::kTruman);
  SessionContext non_truman("11");
  non_truman.set_mode(EnforcementMode::kNonTruman);

  struct Case {
    const char* label;
    const char* sql;
  };
  const Case cases[] = {
      {"overall average grade", "select avg(grade) from grades"},
      {"cs101 average grade",
       "select avg(grade) from grades where course-id = 'cs101'"},
      {"own average grade",
       "select avg(grade) from grades where student-id = '11'"},
      {"own cs101 grade",
       "select grade from grades where student-id = '11' "
       "and course-id = 'cs101'"},
      {"number of graded students",
       "select count(distinct student-id) from grades"},
  };

  std::printf("Query issued by student 11 (true answers in NONE column):\n\n");
  std::printf("%-28s | %-10s | %-10s | %-12s\n", "query", "NONE", "TRUMAN",
              "NON-TRUMAN");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (const Case& c : cases) {
    std::printf("%-28s | %-10s | %-10s | %-12s\n", c.label,
                OneValue(db, none, c.sql).c_str(),
                OneValue(db, truman, c.sql).c_str(),
                OneValue(db, non_truman, c.sql).c_str());
  }
  std::printf(
      "\nReading the table (Section 3.3 of the paper):\n"
      " * TRUMAN silently answers every query, but 'overall average' and\n"
      "   'cs101 average' are computed over the user's own rows only -\n"
      "   misleading answers that differ from the NONE column.\n"
      " * NON-TRUMAN answers exactly when the information is derivable\n"
      "   from the user's views (note 'cs101 average' is CORRECT, via the\n"
      "   AvgGrades view, where Truman quietly returns the wrong number),\n"
      "   and rejects the rest instead of guessing.\n");
  return 0;
}
