// Quickstart: fine-grained access control in ~60 lines.
//
// Creates a table, an authorization view, grants it to a user, and shows
// the Non-Truman model at work: queries answerable from the view run
// unmodified; anything else is rejected outright.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/database.h"

using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

namespace {

void Run(Database& db, const SessionContext& ctx, const char* sql) {
  std::printf("-- [%s as %s] %s\n", fgac::core::EnforcementModeName(ctx.mode()),
              ctx.user().c_str(), sql);
  auto result = db.Execute(sql, ctx);
  if (!result.ok()) {
    std::printf("   REJECTED: %s\n\n", result.status().ToString().c_str());
    return;
  }
  if (result.value().relation.num_columns() > 0) {
    std::printf("%s", result.value().relation.ToString().c_str());
    if (!result.value().validity.justification.empty()) {
      std::printf("   (accepted via %s)\n",
                  result.value().validity.justification.c_str());
    }
  } else {
    std::printf("   OK (%lld rows affected)\n",
                static_cast<long long>(result.value().affected_rows));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Database db;

  // 1. Schema and data (as the administrator).
  fgac::Status setup = db.ExecuteScript(R"sql(
    create table accounts (
      account-id varchar not null primary key,
      owner varchar not null,
      balance double not null
    );
    insert into accounts values
      ('a1', 'alice', 1200.0),
      ('a2', 'alice', 300.5),
      ('b1', 'bob', 9000.0);

    -- 2. One parameterized authorization view covers every customer:
    --    each user sees exactly their own accounts (Section 2 of the paper).
    create authorization view myaccounts as
      select * from accounts where owner = $user-id;
    grant select on myaccounts to alice;
    grant select on myaccounts to bob;

    -- 3. Customers may update their own balance (Section 4.4).
    authorize update on accounts (balance)
      where old(accounts.owner) = $user-id;
  )sql");
  if (!setup.ok()) {
    std::printf("setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }

  SessionContext alice("alice");
  alice.set_mode(EnforcementMode::kNonTruman);

  // Valid: answerable from alice's instantiated view. Note the query is
  // written against the BASE TABLE (authorization transparency) and runs
  // without modification.
  Run(db, alice, "select account-id, balance from accounts "
                 "where owner = 'alice'");
  Run(db, alice, "select sum(balance) from accounts where owner = 'alice'");

  // Invalid: would reveal other customers' data; rejected, never silently
  // restricted (the Non-Truman model, Section 4).
  Run(db, alice, "select * from accounts");
  Run(db, alice, "select sum(balance) from accounts");

  // Updates are checked per tuple.
  Run(db, alice, "update accounts set balance = balance + 10 "
                 "where account-id = 'a1'");
  Run(db, alice, "update accounts set balance = 0 where account-id = 'b1'");

  return 0;
}
