// The paper's running example, end to end: the university registrar
// database with every authorization view from the text, exercised as three
// personas (a student, a professor via role, a secretary with an
// access-pattern view). Each query prints its verdict, the inference rule
// that admitted it, and the (unmodified) result.
//
//   $ ./examples/university

#include <cstdio>
#include <string>

#include "core/database.h"

using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

namespace {

void Explain(Database& db, const SessionContext& ctx, const std::string& sql) {
  auto verdict = db.CheckQueryValidity(sql, ctx);
  std::printf("[%s] %s\n", ctx.user().c_str(), sql.c_str());
  if (!verdict.ok()) {
    std::printf("    error: %s\n\n", verdict.status().ToString().c_str());
    return;
  }
  if (!verdict.value().valid) {
    std::printf("    INVALID -> rejected (%s)\n\n",
                verdict.value().reason.c_str());
    return;
  }
  std::printf("    %s VALID via %s\n",
              verdict.value().unconditional ? "unconditionally"
                                            : "conditionally",
              verdict.value().justification.c_str());
  auto result = db.Execute(sql, ctx);
  if (result.ok()) {
    std::printf("%s\n", result.value().relation.ToString().c_str());
  } else {
    std::printf("    execution error: %s\n\n",
                result.status().ToString().c_str());
  }
}

}  // namespace

int main() {
  Database db;
  fgac::Status setup = db.ExecuteScript(R"sql(
    create table students (
      student-id varchar not null primary key,
      name varchar not null,
      type varchar not null);
    create table courses (
      course-id varchar not null primary key,
      name varchar not null);
    create table registered (
      student-id varchar not null references students,
      course-id varchar not null references courses,
      primary key (student-id, course-id));
    create table grades (
      student-id varchar not null references students,
      course-id varchar not null references courses,
      grade double not null,
      primary key (student-id, course-id));

    insert into students values
      ('11', 'alice', 'fulltime'), ('12', 'bob', 'fulltime'),
      ('13', 'carol', 'parttime'), ('14', 'dave', 'parttime');
    insert into courses values
      ('cs101', 'intro programming'), ('cs202', 'databases'),
      ('ee150', 'circuits');
    insert into registered values
      ('11', 'cs101'), ('11', 'cs202'), ('12', 'cs101'),
      ('12', 'ee150'), ('13', 'cs202'), ('14', 'ee150');
    insert into grades values
      ('11', 'cs101', 4.0), ('12', 'cs101', 3.0),
      ('11', 'cs202', 3.5), ('13', 'cs202', 2.0);

    -- Every student is registered for at least one course (Example 5.1).
    create inclusion dependency every_student_registered
      on students (student-id) references registered (student-id);

    -- Authorization views from the paper.
    create authorization view mygrades as
      select * from grades where student-id = $user-id;
    create authorization view costudentgrades as
      select grades.* from grades, registered
      where registered.student-id = $user-id
        and grades.course-id = registered.course-id;
    create authorization view myregistrations as
      select * from registered where student-id = $user-id;
    create authorization view avggrades as
      select course-id, avg(grade) from grades group by course-id;
    create authorization view regstudents as
      select registered.course-id, students.name, students.type
      from registered, students
      where students.student-id = registered.student-id;
    create authorization view coursegrades as
      select * from grades where course-id = $$course;
    create authorization view allgrades as select * from grades;

    -- Students.
    grant select on mygrades to student_role;
    grant select on costudentgrades to student_role;
    grant select on myregistrations to student_role;
    grant select on regstudents to student_role;

    -- Professors see everything about grades plus the averages.
    grant select on allgrades to professor_role;
    grant select on avggrades to professor_role;

    -- The secretary can look up any one course's grades by id (Section 2's
    -- access-pattern views), but cannot list all grades.
    grant select on coursegrades to secretary;

    -- Students register themselves; the registrar does the rest.
    authorize insert on registered
      where registered.student-id = $user-id to student_role;
  )sql");
  if (!setup.ok()) {
    std::printf("setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }
  db.catalog().GrantRole("student_role", "11");
  db.catalog().GrantRole("student_role", "12");
  db.catalog().GrantRole("professor_role", "prof");

  SessionContext alice("11");
  alice.set_mode(EnforcementMode::kNonTruman);
  SessionContext prof("prof");
  prof.set_mode(EnforcementMode::kNonTruman);
  SessionContext secretary("secretary");
  secretary.set_mode(EnforcementMode::kNonTruman);

  std::printf("=== Student 11 (alice) ===\n\n");
  // Her own rows: unconditionally valid (U1/U2).
  Explain(db, alice, "select course-id, grade from grades "
                     "where student-id = '11'");
  // Her own average (Example 4.1).
  Explain(db, alice, "select avg(grade) from grades where student-id = '11'");
  // All of cs101's grades: conditionally valid because she is registered
  // for cs101 AND may know it (Example 4.4, rules C3a/C3b).
  Explain(db, alice, "select * from grades where course-id = 'cs101'");
  // ee150: not registered -> rejected.
  Explain(db, alice, "select * from grades where course-id = 'ee150'");
  // The global average would be misleading under VPD; here it is rejected.
  Explain(db, alice, "select avg(grade) from grades");
  // Names and types of all students: valid because every student is
  // registered (rule U3a over the inclusion dependency, Example 5.1).
  Explain(db, alice, "select distinct name, type from students");

  std::printf("=== Professor ===\n\n");
  Explain(db, prof, "select avg(grade) from grades");
  Explain(db, prof, "select course-id, avg(grade) from grades "
                    "group by course-id order by 1");

  std::printf("=== Secretary (access-pattern view) ===\n\n");
  Explain(db, secretary, "select * from grades where course-id = 'cs202'");
  Explain(db, secretary, "select count(*) from grades "
                         "where course-id = 'cs101'");
  Explain(db, secretary, "select * from grades");

  std::printf("=== Updates (Section 4.4) ===\n\n");
  auto ins = db.Execute("insert into registered values ('11', 'ee150')", alice);
  std::printf("[11] insert own registration: %s\n",
              ins.ok() ? "AUTHORIZED" : ins.status().ToString().c_str());
  auto bad = db.Execute("insert into registered values ('13', 'ee150')", alice);
  std::printf("[11] insert someone else's registration: %s\n\n",
              bad.ok() ? "AUTHORIZED (bug!)" : bad.status().ToString().c_str());

  // Conditional validity tracks the state: after registering for ee150,
  // alice's earlier rejected query becomes valid.
  std::printf("=== After alice registers for ee150 ===\n\n");
  Explain(db, alice, "select * from grades where course-id = 'ee150'");
  return 0;
}
