// Interactive SQL shell over the fgac engine — the "software layer that can
// add fine-grained authorization to an existing database or application"
// the paper's conclusion envisions, in miniature.
//
//   $ ./examples/fgac_shell [script.sql]
//
// Meta-commands (backslash-prefixed, one per line):
//   \user <name>          switch the session user ($user-id)
//   \param <name> <value> set a session parameter (e.g. \param term cs101)
//   \mode none|truman|non-truman
//   \tables  \views  \grants <user>
//   \help  \quit
//
// Everything else is SQL, '; '-terminated statements — including
// PREPARE name AS <select> / EXECUTE name (args) / DEALLOCATE, which run
// against the shell's server::Session (prepared statements are
// per-session; \user opens a fresh session and drops them). On startup,
// an optional script file is executed as the administrator (handy for
// loading a schema + policies before experimenting).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/database.h"
#include "server/connection_manager.h"

namespace {

using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;
using fgac::server::ConnectionManager;
using fgac::server::Session;

void PrintHelp() {
  std::printf(
      "meta-commands:\n"
      "  \\user <name>            switch user (current session)\n"
      "  \\param <name> <value>   set a $parameter (strings unquoted)\n"
      "  \\mode none|truman|non-truman\n"
      "  \\parallel <n>           execute with n-task scan pipelines\n"
      "                          (0 = database default)\n"
      "  \\tables                 list base tables\n"
      "  \\views                  list views (A = authorization view)\n"
      "  \\grants <user>          list views available to a user\n"
      "  \\help                   this text\n"
      "  \\quit                   exit\n"
      "anything else: SQL, ';'-terminated. Try: explain select ...\n"
      "prepared statements: prepare q as select ... where x = $1;\n"
      "                     execute q ('value');   deallocate q;\n"
      "(\\user opens a fresh session, dropping prepared statements)\n");
}

bool HandleMeta(Database& db, ConnectionManager& cm,
                std::shared_ptr<Session>& session, const std::string& line) {
  SessionContext& ctx = session->context();
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == "\\quit" || cmd == "\\q") {
    std::exit(0);
  } else if (cmd == "\\help") {
    PrintHelp();
  } else if (cmd == "\\user") {
    std::string name;
    in >> name;
    if (name.empty()) {
      std::printf("usage: \\user <name>\n");
      return true;
    }
    // Prepared statements are per-session: switching principals means a
    // fresh session (and registry), exactly like reconnecting.
    EnforcementMode mode = ctx.mode();
    cm.Close(session->id());
    session = cm.Open(name, mode);
    std::printf("now user '%s' (mode %s, session %s)\n", name.c_str(),
                fgac::core::EnforcementModeName(mode),
                session->id().c_str());
  } else if (cmd == "\\param") {
    std::string name, value;
    in >> name >> value;
    if (name.empty() || value.empty()) {
      std::printf("usage: \\param <name> <value>\n");
      return true;
    }
    char* end = nullptr;
    double d = std::strtod(value.c_str(), &end);
    if (end != nullptr && *end == '\0') {
      ctx.SetParam(name, fgac::Value::Double(d));
    } else {
      ctx.SetParam(name, fgac::Value::String(value));
    }
    std::printf("$%s set\n", name.c_str());
  } else if (cmd == "\\mode") {
    std::string mode;
    in >> mode;
    if (mode == "none") {
      ctx.set_mode(EnforcementMode::kNone);
    } else if (mode == "truman") {
      ctx.set_mode(EnforcementMode::kTruman);
    } else if (mode == "non-truman" || mode == "nontruman") {
      ctx.set_mode(EnforcementMode::kNonTruman);
    } else {
      std::printf("usage: \\mode none|truman|non-truman\n");
      return true;
    }
    std::printf("mode: %s\n", fgac::core::EnforcementModeName(ctx.mode()));
  } else if (cmd == "\\parallel") {
    std::string n;
    in >> n;
    char* end = nullptr;
    unsigned long v = n.empty() ? 0 : std::strtoul(n.c_str(), &end, 10);
    if (n.empty() || end == nullptr || *end != '\0') {
      std::printf("usage: \\parallel <n>\n");
      return true;
    }
    ctx.set_exec_parallelism(static_cast<size_t>(v));
    std::printf("exec parallelism: %lu%s\n", v,
                v == 0 ? " (database default)" : "");
  } else if (cmd == "\\tables") {
    for (const std::string& t : db.catalog().TableNames()) {
      const fgac::storage::TableData* data = db.state().GetTable(t);
      std::printf("  %-24s %zu rows\n", t.c_str(),
                  data != nullptr ? data->num_rows() : 0);
    }
  } else if (cmd == "\\views") {
    for (const std::string& v : db.catalog().ViewNames()) {
      const fgac::catalog::ViewDefinition* def = db.catalog().GetView(v);
      std::printf("  %c %-24s params:%zu access:%zu\n",
                  def->is_authorization ? 'A' : ' ', v.c_str(),
                  def->parameters.size(), def->access_parameters.size());
    }
  } else if (cmd == "\\grants") {
    std::string user;
    in >> user;
    if (user.empty()) {
      std::printf("usage: \\grants <user>\n");
      return true;
    }
    for (const auto* view : db.catalog().AvailableViews(user)) {
      std::printf("  %s\n", view->name.c_str());
    }
  } else {
    std::printf("unknown meta-command %s (\\help for help)\n", cmd.c_str());
  }
  return true;
}

void RunSql(Session& session, const std::string& sql) {
  auto result = session.Execute(sql);
  if (!result.ok()) {
    std::printf("!! %s\n", result.status().ToString().c_str());
    return;
  }
  const fgac::core::ExecResult& r = result.value();
  if (r.relation.num_columns() > 0) {
    std::printf("%s", r.relation.ToString().c_str());
    if (!r.validity.justification.empty()) {
      std::printf("-- %s valid via %s%s\n",
                  r.validity.unconditional ? "unconditionally"
                                           : "conditionally",
                  r.validity.justification.c_str(),
                  r.validity_from_cache ? " (cached verdict)" : "");
    }
  } else if (!r.message.empty()) {
    std::printf("ok: %s\n", r.message.c_str());
  } else {
    std::printf("ok: %lld row(s) affected\n",
                static_cast<long long>(r.affected_rows));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    fgac::Status s = db.ExecuteScript(buffer.str());
    if (!s.ok()) {
      std::fprintf(stderr, "script failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s\n", argv[1]);
  }

  ConnectionManager cm(db);
  std::shared_ptr<Session> session = cm.Open("admin");
  std::printf("fgac shell — \\help for help. You are 'admin' (mode none).\n");

  std::string pending;
  std::string line;
  while (true) {
    std::printf(pending.empty() ? "%s> " : "%s.. ",
                session->context().user().c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (pending.empty() && !line.empty() && line[0] == '\\') {
      HandleMeta(db, cm, session, line);
      continue;
    }
    pending += line + "\n";
    // Execute once a ';' arrives (crude but fine for a demo shell).
    auto pos = pending.find(';');
    if (pos == std::string::npos) continue;
    std::string sql = pending.substr(0, pos);
    pending = pending.substr(pos + 1);
    // Trim leftover whitespace so the continuation prompt resets.
    while (!pending.empty() &&
           (pending.front() == '\n' || pending.front() == ' ')) {
      pending.erase(pending.begin());
    }
    if (sql.find_first_not_of(" \t\n") == std::string::npos) continue;
    RunSql(*session, sql);
  }
  return 0;
}
