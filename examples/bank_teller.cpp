// The paper's banking scenario (Section 1):
//   * a customer can query her own balance and no one else's;
//   * a teller has read access to all balances but not to the customers'
//     addresses behind them (cell-level authorization via projection);
//   * a teller can see the full record of any ONE account by providing the
//     account id, but not a listing of all accounts (access-pattern view).
//
//   $ ./examples/bank_teller

#include <cstdio>
#include <string>

#include "core/database.h"

using fgac::core::Database;
using fgac::core::EnforcementMode;
using fgac::core::SessionContext;

namespace {

void Try(Database& db, const SessionContext& ctx, const std::string& sql) {
  std::printf("[%s] %s\n", ctx.user().c_str(), sql.c_str());
  auto result = db.Execute(sql, ctx);
  if (!result.ok()) {
    std::printf("    REJECTED: %s\n\n", result.status().message().c_str());
    return;
  }
  std::printf("    accepted (%s)\n%s\n",
              result.value().validity.justification.c_str(),
              result.value().relation.ToString().c_str());
}

}  // namespace

int main() {
  Database db;
  fgac::Status setup = db.ExecuteScript(R"sql(
    create table customers (
      customer-id varchar not null primary key,
      name varchar not null,
      address varchar not null);
    create table accounts (
      account-id varchar not null primary key,
      customer-id varchar not null references customers,
      balance double not null);

    insert into customers values
      ('c1', 'alice', '12 elm st'),
      ('c2', 'bob', '99 oak ave'),
      ('c3', 'carol', '7 pine rd');
    insert into accounts values
      ('a10', 'c1', 1500.0),
      ('a11', 'c1', 20.5),
      ('a20', 'c2', 48000.0),
      ('a30', 'c3', 5.0);

    -- A customer sees her own accounts.
    create authorization view myaccounts as
      select accounts.* from accounts, customers
      where customers.customer-id = accounts.customer-id
        and customers.name = $user-id;
    -- ...and her own customer record.
    create authorization view myrecord as
      select * from customers where name = $user-id;

    -- "a teller should have read access to balances of all accounts but
    -- not the addresses of customers corresponding to these balances":
    -- the projection hides the address column (cell-level granularity).
    create authorization view teller_balances as
      select account-id, customer-id, balance from accounts;
    create authorization view teller_names as
      select customer-id, name from customers;

    -- "a teller should be allowed to see the balance of any account by
    -- providing the account-id but not the balances of all accounts
    -- together": an access-pattern view (Sections 2 and 6). This teller
    -- profile gets ONLY the keyed lookup.
    create authorization view account_by_id as
      select * from accounts where account-id = $$acct;

    grant select on myaccounts to alice;
    grant select on myrecord to alice;
    grant select on teller_balances to teller;
    grant select on teller_names to teller;
    grant select on account_by_id to window_clerk;
  )sql");
  if (!setup.ok()) {
    std::printf("setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }

  SessionContext alice("alice");
  alice.set_mode(EnforcementMode::kNonTruman);
  SessionContext teller("teller");
  teller.set_mode(EnforcementMode::kNonTruman);
  SessionContext clerk("window_clerk");
  clerk.set_mode(EnforcementMode::kNonTruman);

  std::printf("=== Customer (own accounts only) ===\n\n");
  Try(db, alice, "select account-id, balance from accounts, customers "
                 "where customers.customer-id = accounts.customer-id "
                 "and customers.name = 'alice'");
  // a20 belongs to bob: must be rejected.
  Try(db, alice, "select balance from accounts where account-id = 'a20'");

  std::printf("=== Teller (balances yes, addresses no) ===\n\n");
  Try(db, teller, "select account-id, balance from accounts "
                  "order by balance desc");
  Try(db, teller, "select sum(balance) from accounts");
  Try(db, teller, "select c.name, a.balance from customers c, accounts a "
                  "where c.customer-id = a.customer-id");
  Try(db, teller, "select address from customers");
  Try(db, teller, "select c.address, a.balance from customers c, accounts a "
                  "where c.customer-id = a.customer-id");

  std::printf("=== Window clerk (one account at a time) ===\n\n");
  Try(db, clerk, "select * from accounts where account-id = 'a20'");
  Try(db, clerk, "select balance from accounts where account-id = 'a30'");
  Try(db, clerk, "select * from accounts");
  Try(db, clerk, "select sum(balance) from accounts");
  return 0;
}
