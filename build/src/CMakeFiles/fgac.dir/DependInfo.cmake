
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/binder.cc" "src/CMakeFiles/fgac.dir/algebra/binder.cc.o" "gcc" "src/CMakeFiles/fgac.dir/algebra/binder.cc.o.d"
  "/root/repo/src/algebra/normalize.cc" "src/CMakeFiles/fgac.dir/algebra/normalize.cc.o" "gcc" "src/CMakeFiles/fgac.dir/algebra/normalize.cc.o.d"
  "/root/repo/src/algebra/plan.cc" "src/CMakeFiles/fgac.dir/algebra/plan.cc.o" "gcc" "src/CMakeFiles/fgac.dir/algebra/plan.cc.o.d"
  "/root/repo/src/algebra/plan_hash.cc" "src/CMakeFiles/fgac.dir/algebra/plan_hash.cc.o" "gcc" "src/CMakeFiles/fgac.dir/algebra/plan_hash.cc.o.d"
  "/root/repo/src/algebra/reference_eval.cc" "src/CMakeFiles/fgac.dir/algebra/reference_eval.cc.o" "gcc" "src/CMakeFiles/fgac.dir/algebra/reference_eval.cc.o.d"
  "/root/repo/src/algebra/scalar.cc" "src/CMakeFiles/fgac.dir/algebra/scalar.cc.o" "gcc" "src/CMakeFiles/fgac.dir/algebra/scalar.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/fgac.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/fgac.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/constraint.cc" "src/CMakeFiles/fgac.dir/catalog/constraint.cc.o" "gcc" "src/CMakeFiles/fgac.dir/catalog/constraint.cc.o.d"
  "/root/repo/src/catalog/principal.cc" "src/CMakeFiles/fgac.dir/catalog/principal.cc.o" "gcc" "src/CMakeFiles/fgac.dir/catalog/principal.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/fgac.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/fgac.dir/catalog/schema.cc.o.d"
  "/root/repo/src/catalog/type.cc" "src/CMakeFiles/fgac.dir/catalog/type.cc.o" "gcc" "src/CMakeFiles/fgac.dir/catalog/type.cc.o.d"
  "/root/repo/src/catalog/view_def.cc" "src/CMakeFiles/fgac.dir/catalog/view_def.cc.o" "gcc" "src/CMakeFiles/fgac.dir/catalog/view_def.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/fgac.dir/common/status.cc.o" "gcc" "src/CMakeFiles/fgac.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/fgac.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/fgac.dir/common/strings.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/fgac.dir/common/value.cc.o" "gcc" "src/CMakeFiles/fgac.dir/common/value.cc.o.d"
  "/root/repo/src/core/acl_baseline.cc" "src/CMakeFiles/fgac.dir/core/acl_baseline.cc.o" "gcc" "src/CMakeFiles/fgac.dir/core/acl_baseline.cc.o.d"
  "/root/repo/src/core/auth_view.cc" "src/CMakeFiles/fgac.dir/core/auth_view.cc.o" "gcc" "src/CMakeFiles/fgac.dir/core/auth_view.cc.o.d"
  "/root/repo/src/core/database.cc" "src/CMakeFiles/fgac.dir/core/database.cc.o" "gcc" "src/CMakeFiles/fgac.dir/core/database.cc.o.d"
  "/root/repo/src/core/session_context.cc" "src/CMakeFiles/fgac.dir/core/session_context.cc.o" "gcc" "src/CMakeFiles/fgac.dir/core/session_context.cc.o.d"
  "/root/repo/src/core/truman.cc" "src/CMakeFiles/fgac.dir/core/truman.cc.o" "gcc" "src/CMakeFiles/fgac.dir/core/truman.cc.o.d"
  "/root/repo/src/core/update_auth.cc" "src/CMakeFiles/fgac.dir/core/update_auth.cc.o" "gcc" "src/CMakeFiles/fgac.dir/core/update_auth.cc.o.d"
  "/root/repo/src/core/validity.cc" "src/CMakeFiles/fgac.dir/core/validity.cc.o" "gcc" "src/CMakeFiles/fgac.dir/core/validity.cc.o.d"
  "/root/repo/src/core/validity_cache.cc" "src/CMakeFiles/fgac.dir/core/validity_cache.cc.o" "gcc" "src/CMakeFiles/fgac.dir/core/validity_cache.cc.o.d"
  "/root/repo/src/core/view_pruning.cc" "src/CMakeFiles/fgac.dir/core/view_pruning.cc.o" "gcc" "src/CMakeFiles/fgac.dir/core/view_pruning.cc.o.d"
  "/root/repo/src/exec/eval.cc" "src/CMakeFiles/fgac.dir/exec/eval.cc.o" "gcc" "src/CMakeFiles/fgac.dir/exec/eval.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/fgac.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/fgac.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/fgac.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/fgac.dir/exec/operators.cc.o.d"
  "/root/repo/src/optimizer/cost.cc" "src/CMakeFiles/fgac.dir/optimizer/cost.cc.o" "gcc" "src/CMakeFiles/fgac.dir/optimizer/cost.cc.o.d"
  "/root/repo/src/optimizer/implication.cc" "src/CMakeFiles/fgac.dir/optimizer/implication.cc.o" "gcc" "src/CMakeFiles/fgac.dir/optimizer/implication.cc.o.d"
  "/root/repo/src/optimizer/memo.cc" "src/CMakeFiles/fgac.dir/optimizer/memo.cc.o" "gcc" "src/CMakeFiles/fgac.dir/optimizer/memo.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/fgac.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/fgac.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/rules.cc" "src/CMakeFiles/fgac.dir/optimizer/rules.cc.o" "gcc" "src/CMakeFiles/fgac.dir/optimizer/rules.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/fgac.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/fgac.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/fgac.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/fgac.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/fgac.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/fgac.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/printer.cc" "src/CMakeFiles/fgac.dir/sql/printer.cc.o" "gcc" "src/CMakeFiles/fgac.dir/sql/printer.cc.o.d"
  "/root/repo/src/sql/token.cc" "src/CMakeFiles/fgac.dir/sql/token.cc.o" "gcc" "src/CMakeFiles/fgac.dir/sql/token.cc.o.d"
  "/root/repo/src/storage/database_state.cc" "src/CMakeFiles/fgac.dir/storage/database_state.cc.o" "gcc" "src/CMakeFiles/fgac.dir/storage/database_state.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/CMakeFiles/fgac.dir/storage/relation.cc.o" "gcc" "src/CMakeFiles/fgac.dir/storage/relation.cc.o.d"
  "/root/repo/src/storage/table_data.cc" "src/CMakeFiles/fgac.dir/storage/table_data.cc.o" "gcc" "src/CMakeFiles/fgac.dir/storage/table_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
