file(REMOVE_RECURSE
  "libfgac.a"
)
