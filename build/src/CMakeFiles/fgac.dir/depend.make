# Empty dependencies file for fgac.
# This may be replaced when dependencies are built.
