file(REMOVE_RECURSE
  "CMakeFiles/bench_update_auth.dir/bench_update_auth.cc.o"
  "CMakeFiles/bench_update_auth.dir/bench_update_auth.cc.o.d"
  "bench_update_auth"
  "bench_update_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
