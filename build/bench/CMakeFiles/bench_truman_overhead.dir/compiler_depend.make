# Empty compiler generated dependencies file for bench_truman_overhead.
# This may be replaced when dependencies are built.
