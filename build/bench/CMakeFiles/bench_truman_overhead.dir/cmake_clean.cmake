file(REMOVE_RECURSE
  "CMakeFiles/bench_truman_overhead.dir/bench_truman_overhead.cc.o"
  "CMakeFiles/bench_truman_overhead.dir/bench_truman_overhead.cc.o.d"
  "bench_truman_overhead"
  "bench_truman_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_truman_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
