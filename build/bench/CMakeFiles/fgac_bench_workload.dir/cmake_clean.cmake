file(REMOVE_RECURSE
  "../lib/libfgac_bench_workload.a"
  "../lib/libfgac_bench_workload.pdb"
  "CMakeFiles/fgac_bench_workload.dir/workload.cc.o"
  "CMakeFiles/fgac_bench_workload.dir/workload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgac_bench_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
