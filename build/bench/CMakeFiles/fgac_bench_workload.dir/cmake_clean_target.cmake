file(REMOVE_RECURSE
  "../lib/libfgac_bench_workload.a"
)
