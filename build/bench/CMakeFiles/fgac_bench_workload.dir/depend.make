# Empty dependencies file for fgac_bench_workload.
# This may be replaced when dependencies are built.
