file(REMOVE_RECURSE
  "CMakeFiles/bench_validity_complex.dir/bench_validity_complex.cc.o"
  "CMakeFiles/bench_validity_complex.dir/bench_validity_complex.cc.o.d"
  "bench_validity_complex"
  "bench_validity_complex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validity_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
