# Empty dependencies file for bench_validity_complex.
# This may be replaced when dependencies are built.
