# Empty compiler generated dependencies file for bench_acl_baseline.
# This may be replaced when dependencies are built.
