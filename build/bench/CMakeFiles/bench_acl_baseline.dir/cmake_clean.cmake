file(REMOVE_RECURSE
  "CMakeFiles/bench_acl_baseline.dir/bench_acl_baseline.cc.o"
  "CMakeFiles/bench_acl_baseline.dir/bench_acl_baseline.cc.o.d"
  "bench_acl_baseline"
  "bench_acl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
