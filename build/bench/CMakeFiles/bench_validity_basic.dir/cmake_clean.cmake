file(REMOVE_RECURSE
  "CMakeFiles/bench_validity_basic.dir/bench_validity_basic.cc.o"
  "CMakeFiles/bench_validity_basic.dir/bench_validity_basic.cc.o.d"
  "bench_validity_basic"
  "bench_validity_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validity_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
