# Empty dependencies file for bench_validity_basic.
# This may be replaced when dependencies are built.
