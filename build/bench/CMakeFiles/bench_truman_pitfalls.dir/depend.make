# Empty dependencies file for bench_truman_pitfalls.
# This may be replaced when dependencies are built.
