file(REMOVE_RECURSE
  "CMakeFiles/bench_truman_pitfalls.dir/bench_truman_pitfalls.cc.o"
  "CMakeFiles/bench_truman_pitfalls.dir/bench_truman_pitfalls.cc.o.d"
  "bench_truman_pitfalls"
  "bench_truman_pitfalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_truman_pitfalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
