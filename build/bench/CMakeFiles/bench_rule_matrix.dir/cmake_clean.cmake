file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_matrix.dir/bench_rule_matrix.cc.o"
  "CMakeFiles/bench_rule_matrix.dir/bench_rule_matrix.cc.o.d"
  "bench_rule_matrix"
  "bench_rule_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
