# Empty compiler generated dependencies file for bench_rule_matrix.
# This may be replaced when dependencies are built.
