file(REMOVE_RECURSE
  "CMakeFiles/bench_validity_cache.dir/bench_validity_cache.cc.o"
  "CMakeFiles/bench_validity_cache.dir/bench_validity_cache.cc.o.d"
  "bench_validity_cache"
  "bench_validity_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validity_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
