# Empty compiler generated dependencies file for bench_validity_cache.
# This may be replaced when dependencies are built.
