file(REMOVE_RECURSE
  "CMakeFiles/bench_access_pattern.dir/bench_access_pattern.cc.o"
  "CMakeFiles/bench_access_pattern.dir/bench_access_pattern.cc.o.d"
  "bench_access_pattern"
  "bench_access_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_access_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
