# Empty compiler generated dependencies file for bench_access_pattern.
# This may be replaced when dependencies are built.
