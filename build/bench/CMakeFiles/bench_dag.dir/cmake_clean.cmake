file(REMOVE_RECURSE
  "CMakeFiles/bench_dag.dir/bench_dag.cc.o"
  "CMakeFiles/bench_dag.dir/bench_dag.cc.o.d"
  "bench_dag"
  "bench_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
