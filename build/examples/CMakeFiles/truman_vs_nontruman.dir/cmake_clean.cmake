file(REMOVE_RECURSE
  "CMakeFiles/truman_vs_nontruman.dir/truman_vs_nontruman.cpp.o"
  "CMakeFiles/truman_vs_nontruman.dir/truman_vs_nontruman.cpp.o.d"
  "truman_vs_nontruman"
  "truman_vs_nontruman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truman_vs_nontruman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
