# Empty compiler generated dependencies file for truman_vs_nontruman.
# This may be replaced when dependencies are built.
