file(REMOVE_RECURSE
  "CMakeFiles/fgac_shell.dir/fgac_shell.cpp.o"
  "CMakeFiles/fgac_shell.dir/fgac_shell.cpp.o.d"
  "fgac_shell"
  "fgac_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgac_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
