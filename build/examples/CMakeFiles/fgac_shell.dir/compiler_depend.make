# Empty compiler generated dependencies file for fgac_shell.
# This may be replaced when dependencies are built.
