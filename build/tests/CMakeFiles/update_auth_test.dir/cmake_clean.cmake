file(REMOVE_RECURSE
  "CMakeFiles/update_auth_test.dir/update_auth_test.cc.o"
  "CMakeFiles/update_auth_test.dir/update_auth_test.cc.o.d"
  "update_auth_test"
  "update_auth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
