# Empty compiler generated dependencies file for update_auth_test.
# This may be replaced when dependencies are built.
