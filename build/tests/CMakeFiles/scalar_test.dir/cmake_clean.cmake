file(REMOVE_RECURSE
  "CMakeFiles/scalar_test.dir/scalar_test.cc.o"
  "CMakeFiles/scalar_test.dir/scalar_test.cc.o.d"
  "scalar_test"
  "scalar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
