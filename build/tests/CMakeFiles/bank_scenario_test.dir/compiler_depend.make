# Empty compiler generated dependencies file for bank_scenario_test.
# This may be replaced when dependencies are built.
