file(REMOVE_RECURSE
  "CMakeFiles/bank_scenario_test.dir/bank_scenario_test.cc.o"
  "CMakeFiles/bank_scenario_test.dir/bank_scenario_test.cc.o.d"
  "bank_scenario_test"
  "bank_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
