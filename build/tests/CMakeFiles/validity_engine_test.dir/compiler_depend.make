# Empty compiler generated dependencies file for validity_engine_test.
# This may be replaced when dependencies are built.
