file(REMOVE_RECURSE
  "CMakeFiles/validity_engine_test.dir/validity_engine_test.cc.o"
  "CMakeFiles/validity_engine_test.dir/validity_engine_test.cc.o.d"
  "validity_engine_test"
  "validity_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validity_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
