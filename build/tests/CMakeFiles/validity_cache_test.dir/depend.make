# Empty dependencies file for validity_cache_test.
# This may be replaced when dependencies are built.
