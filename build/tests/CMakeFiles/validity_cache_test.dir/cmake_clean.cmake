file(REMOVE_RECURSE
  "CMakeFiles/validity_cache_test.dir/validity_cache_test.cc.o"
  "CMakeFiles/validity_cache_test.dir/validity_cache_test.cc.o.d"
  "validity_cache_test"
  "validity_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validity_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
