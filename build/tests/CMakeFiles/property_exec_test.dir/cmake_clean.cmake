file(REMOVE_RECURSE
  "CMakeFiles/property_exec_test.dir/property_exec_test.cc.o"
  "CMakeFiles/property_exec_test.dir/property_exec_test.cc.o.d"
  "property_exec_test"
  "property_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
