# Empty dependencies file for property_validity_test.
# This may be replaced when dependencies are built.
