file(REMOVE_RECURSE
  "CMakeFiles/property_validity_test.dir/property_validity_test.cc.o"
  "CMakeFiles/property_validity_test.dir/property_validity_test.cc.o.d"
  "property_validity_test"
  "property_validity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_validity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
