file(REMOVE_RECURSE
  "CMakeFiles/auth_view_test.dir/auth_view_test.cc.o"
  "CMakeFiles/auth_view_test.dir/auth_view_test.cc.o.d"
  "auth_view_test"
  "auth_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
