# Empty compiler generated dependencies file for fgac_test_util.
# This may be replaced when dependencies are built.
