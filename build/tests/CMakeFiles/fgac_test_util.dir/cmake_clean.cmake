file(REMOVE_RECURSE
  "CMakeFiles/fgac_test_util.dir/test_util.cc.o"
  "CMakeFiles/fgac_test_util.dir/test_util.cc.o.d"
  "libfgac_test_util.a"
  "libfgac_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgac_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
