file(REMOVE_RECURSE
  "libfgac_test_util.a"
)
