# Empty dependencies file for truman_test.
# This may be replaced when dependencies are built.
