file(REMOVE_RECURSE
  "CMakeFiles/truman_test.dir/truman_test.cc.o"
  "CMakeFiles/truman_test.dir/truman_test.cc.o.d"
  "truman_test"
  "truman_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
